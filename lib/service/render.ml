module Json = Rb_util.Json
module Table = Rb_util.Table
module Config = Rb_locking.Config
module Scheme = Rb_locking.Scheme
module Dfg = Rb_dfg.Dfg

(* ----------------------------------------------------------------- json *)

let json_of_config config =
  Json.Obj
    [
      ("scheme", Json.String (Scheme.name (Config.scheme config)));
      ( "locks",
        Json.List
          (List.map
             (fun fu ->
               Json.Obj
                 [
                   ("fu", Json.Int fu);
                   ( "minterms",
                     Json.List
                       (List.map
                          (fun m ->
                            let a, b = Rb_dfg.Minterm.unpack m in
                            Json.List [ Json.Int a; Json.Int b ])
                          (Rb_dfg.Minterm.Set.elements (Config.minterms_of config fu)))
                   );
                 ])
             (Config.locked_fus config)) );
      ("lambda_per_fu", Json.float_or_string (Config.lambda_per_fu config));
    ]

let json_of_attack (r : Outcome.attack_report) =
  let outcome_fields =
    match r.Outcome.outcome with
    | Outcome.Broken { iterations; key_correct; key } ->
      [
        ("outcome", Json.String "broken");
        ("iterations", Json.Int iterations);
        ("key_correct", Json.Bool key_correct);
        ("key", Json.String key);
      ]
    | Outcome.Budget_exceeded { iterations } ->
      [ ("outcome", Json.String "budget-exceeded"); ("iterations", Json.Int iterations) ]
    | Outcome.Solver_limit { iterations; reason } ->
      [
        ("outcome", Json.String "solver-limit");
        ("iterations", Json.Int iterations);
        ("reason", Json.String (Rb_util.Limits.reason_label reason));
      ]
  in
  Json.Obj (("description", Json.String r.Outcome.description) :: outcome_fields)

let result_to_json (o : Outcome.t) =
  match o with
  | Outcome.Benchmarks { rows; binders } ->
    Json.Obj
      [
        ( "benchmarks",
          Json.List
            (List.map
               (fun { Outcome.name; source; adds; muls; cycles } ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ("source", Json.String source);
                     ("adds", Json.Int adds);
                     ("muls", Json.Int muls);
                     ("cycles", Json.Int cycles);
                   ])
               rows) );
        ("binders", Json.List (List.map (fun (n, _) -> Json.String n) binders));
      ]
  | Outcome.Bound r ->
    let report = r.Outcome.report in
    Json.Obj
      [
        ("benchmark", Json.String r.Outcome.benchmark);
        ("binder", Json.String r.Outcome.binder);
        ("kind", Json.String (Dfg.kind_label r.Outcome.kind));
        ("config", json_of_config r.Outcome.config);
        ("expected_errors", Json.Int r.Outcome.expected_errors);
        ( "measured",
          Json.Obj
            [
              ("error_events", Json.Int report.Rb_sim.Exec.error_events);
              ("samples", Json.Int report.Rb_sim.Exec.samples);
              ("corrupted_samples", Json.Int report.Rb_sim.Exec.corrupted_samples);
              ("max_burst_cycles", Json.Int report.Rb_sim.Exec.max_consecutive_cycles);
            ] );
        ( "overhead",
          Json.Obj
            [
              ("registers", Json.Int r.Outcome.registers);
              ("switching_rate", Json.float_or_string r.Outcome.switching_rate);
            ] );
      ]
  | Outcome.Linted reports -> Json.List (List.map Rb_lint.Report.json reports)
  | Outcome.Analyzed reports ->
    Json.Obj
      [
        ("schema", Json.String "rb-analyze/1");
        ("reports", Json.List (List.map Rb_analysis.Report.to_json reports));
      ]
  | Outcome.Attacked r -> json_of_attack r
  | Outcome.Shown text | Outcome.Custom_report text | Outcome.Exported text ->
    Json.Obj [ ("text", Json.String text) ]

(* ----------------------------------------------------------------- text *)

let with_buffer f =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let benchmarks_text rows binders =
  let table =
    Table.create ~title:"MediaBench-derived benchmarks (Sec. VI)"
      ~columns:[ "source"; "adds"; "muls"; "cycles" ]
  in
  List.iter
    (fun { Outcome.name; source; adds; muls; cycles } ->
      Table.add_text_row table ~label:name
        ~cells:[ source; string_of_int adds; string_of_int muls; string_of_int cycles ])
    rows;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render table);
  Buffer.add_string buf "\n";
  Buffer.add_string buf "\nregistered binders:\n";
  List.iter
    (fun (name, description) ->
      Buffer.add_string buf (Printf.sprintf "  %-10s %s\n" name description))
    binders;
  Buffer.contents buf

let bound_text (r : Outcome.bind_report) =
  let report = r.Outcome.report in
  with_buffer (fun f ->
      Format.fprintf f "binder: %s@." r.Outcome.binder;
      Format.fprintf f "locking: %a@." Config.pp r.Outcome.config;
      Format.fprintf f "predicted SAT iterations per FU (Eqn. 1): %.0f@."
        (Config.lambda_per_fu r.Outcome.config);
      Format.fprintf f "expected application errors (Eqn. 2): %d@."
        r.Outcome.expected_errors;
      Format.fprintf f "measured wrong-key error events: %d over %d samples@."
        report.Rb_sim.Exec.error_events report.Rb_sim.Exec.samples;
      Format.fprintf f "corrupted samples: %d, longest error burst: %d cycles@."
        report.Rb_sim.Exec.corrupted_samples report.Rb_sim.Exec.max_consecutive_cycles;
      Format.fprintf f "registers: %d, switching rate: %.3f@." r.Outcome.registers
        r.Outcome.switching_rate)

let attacked_text ~wall_s (r : Outcome.attack_report) =
  with_buffer (fun f ->
      Format.fprintf f "locked circuit: %s, %s@." r.Outcome.description r.Outcome.stats;
      match r.Outcome.outcome with
      | Outcome.Broken { iterations; key_correct; key } ->
        Format.fprintf f "broken in %d DIP iterations (%.2fs); recovered key %s %s@."
          iterations wall_s key
          (if key_correct then "is functionally correct" else "FAILS verification")
      | Outcome.Budget_exceeded { iterations } ->
        Format.fprintf f "survived %d iterations (%.2fs)@." iterations wall_s
      | Outcome.Solver_limit { iterations; reason } ->
        Format.fprintf f "solver %s budget exhausted after %d iterations (%.2fs)@."
          (Rb_util.Limits.reason_label reason) iterations wall_s)

let to_text ?(attack_wall_s = 0.) (o : Outcome.t) =
  match o with
  | Outcome.Benchmarks { rows; binders } -> benchmarks_text rows binders
  | Outcome.Shown text | Outcome.Custom_report text | Outcome.Exported text -> text
  | Outcome.Bound r -> bound_text r
  | Outcome.Linted reports ->
    with_buffer (fun f ->
        List.iter (fun r -> Format.fprintf f "%a@." Rb_lint.Report.pp r) reports)
  | Outcome.Analyzed reports ->
    with_buffer (fun f ->
        List.iter (fun r -> Format.fprintf f "%a@." Rb_analysis.Report.pp r) reports)
  | Outcome.Attacked r -> attacked_text ~wall_s:attack_wall_s r

let print ?attack_wall_s format o =
  match format with
  | `Text -> print_string (to_text ?attack_wall_s o)
  | `Json -> print_endline (Json.to_string_pretty (result_to_json o))
