module Json = Rb_util.Json
module Dfg = Rb_dfg.Dfg

type scheme = Rll | Pf | Antisat | Permnet

let scheme_label = function
  | Rll -> "rll"
  | Pf -> "pf"
  | Antisat -> "antisat"
  | Permnet -> "permnet"

let scheme_of_label = function
  | "rll" -> Some Rll
  | "pf" -> Some Pf
  | "antisat" -> Some Antisat
  | "permnet" -> Some Permnet
  | _ -> None

type custom_source = Dfg_source of string | Expr_source of string

type t =
  | List_benchmarks
  | Show of { benchmark : string; seed : int }
  | Bind of {
      benchmark : string;
      seed : int;
      binder : string;
      kind : Dfg.op_kind;
      locked_fus : int;
      minterms_per_fu : int;
    }
  | Lint of {
      benchmark : string option;
      seed : int;
      locked_fus : int;
      minterms_per_fu : int;
      min_lambda : float option;
    }
  | Analyze of { scheme : scheme option; width : int; strength : int; seed : int }
  | Attack of {
      scheme : scheme;
      width : int;
      strength : int;
      seed : int;
      max_iterations : int;
      portfolio : int;
    }
  | Custom of {
      source : custom_source;
      kind : Dfg.op_kind;
      locked_fus : int;
      minterms_per_fu : int;
      trace_length : int;
      seed : int;
    }
  | Export_cnf of { scheme : scheme; width : int; strength : int; miter : bool; seed : int }
  | Export_dfg of { benchmark : string }
  | Dot of { benchmark : string }

let op = function
  | List_benchmarks -> "list"
  | Show _ -> "show"
  | Bind _ -> "bind"
  | Lint _ -> "lint"
  | Analyze _ -> "analyze"
  | Attack _ -> "attack"
  | Custom _ -> "custom"
  | Export_cnf _ -> "export-cnf"
  | Export_dfg _ -> "export-dfg"
  | Dot _ -> "dot"

(* ------------------------------------------------------------- encoding *)

(* Every field is always emitted (None as Null), so a job's encoding —
   and therefore its digest — does not depend on which fields the
   sender spelled out. *)
let to_json t =
  let obj fields = Json.Obj (("op", Json.String (op t)) :: fields) in
  match t with
  | List_benchmarks -> obj []
  | Show { benchmark; seed } ->
    obj [ ("benchmark", Json.String benchmark); ("seed", Json.Int seed) ]
  | Bind { benchmark; seed; binder; kind; locked_fus; minterms_per_fu } ->
    obj
      [
        ("benchmark", Json.String benchmark);
        ("seed", Json.Int seed);
        ("binder", Json.String binder);
        ("kind", Json.String (Dfg.kind_label kind));
        ("locked_fus", Json.Int locked_fus);
        ("minterms_per_fu", Json.Int minterms_per_fu);
      ]
  | Lint { benchmark; seed; locked_fus; minterms_per_fu; min_lambda } ->
    obj
      [
        ( "benchmark",
          match benchmark with None -> Json.Null | Some b -> Json.String b );
        ("seed", Json.Int seed);
        ("locked_fus", Json.Int locked_fus);
        ("minterms_per_fu", Json.Int minterms_per_fu);
        ( "min_lambda",
          match min_lambda with None -> Json.Null | Some l -> Json.Float l );
      ]
  | Analyze { scheme; width; strength; seed } ->
    obj
      [
        ( "scheme",
          Json.String (match scheme with None -> "all" | Some s -> scheme_label s) );
        ("width", Json.Int width);
        ("strength", Json.Int strength);
        ("seed", Json.Int seed);
      ]
  | Attack { scheme; width; strength; seed; max_iterations; portfolio } ->
    obj
      [
        ("scheme", Json.String (scheme_label scheme));
        ("width", Json.Int width);
        ("strength", Json.Int strength);
        ("seed", Json.Int seed);
        ("max_iterations", Json.Int max_iterations);
        ("portfolio", Json.Int portfolio);
      ]
  | Custom { source; kind; locked_fus; minterms_per_fu; trace_length; seed } ->
    let format, text =
      match source with
      | Dfg_source s -> ("dfg-text", s)
      | Expr_source s -> ("expr", s)
    in
    obj
      [
        ("format", Json.String format);
        ("text", Json.String text);
        ("kind", Json.String (Dfg.kind_label kind));
        ("locked_fus", Json.Int locked_fus);
        ("minterms_per_fu", Json.Int minterms_per_fu);
        ("trace_length", Json.Int trace_length);
        ("seed", Json.Int seed);
      ]
  | Export_cnf { scheme; width; strength; miter; seed } ->
    obj
      [
        ("scheme", Json.String (scheme_label scheme));
        ("width", Json.Int width);
        ("strength", Json.Int strength);
        ("miter", Json.Bool miter);
        ("seed", Json.Int seed);
      ]
  | Export_dfg { benchmark } -> obj [ ("benchmark", Json.String benchmark) ]
  | Dot { benchmark } -> obj [ ("benchmark", Json.String benchmark) ]

(* ----------------------------------------------------------- validation *)

let invalid fmt = Printf.ksprintf (fun m -> Error (Error.make Error.Invalid_request m)) fmt

let ( let* ) = Result.bind

let range name lo hi x =
  if x < lo || x > hi then invalid "%s must be in %d..%d" name lo hi else Ok ()

let netlist_scheme = function
  | Rll | Pf | Permnet -> Ok ()
  | Antisat -> invalid "scheme must be rll, pf, or permnet"

let validate = function
  | List_benchmarks | Show _ | Export_dfg _ | Dot _ -> Ok ()
  | Bind { locked_fus; minterms_per_fu; _ } ->
    let* () = range "locked-fus" 1 64 locked_fus in
    range "minterms" 1 64 minterms_per_fu
  | Lint { locked_fus; minterms_per_fu; _ } ->
    let* () = range "locked-fus" 1 64 locked_fus in
    range "minterms" 1 64 minterms_per_fu
  | Analyze { width; strength; _ } ->
    let* () = range "width" 2 8 width in
    range "strength" 1 256 strength
  | Attack { scheme; width; strength; max_iterations; portfolio; _ } ->
    let* () = netlist_scheme scheme in
    let* () = range "width" 2 8 width in
    let* () = range "strength" 1 256 strength in
    let* () = range "max-iterations" 1 10_000_000 max_iterations in
    range "portfolio" 1 64 portfolio
  | Custom { locked_fus; minterms_per_fu; trace_length; _ } ->
    let* () = range "locked-fus" 1 64 locked_fus in
    let* () = range "minterms" 1 64 minterms_per_fu in
    range "trace-length" 1 1_000_000 trace_length
  | Export_cnf { scheme; width; strength; _ } ->
    let* () = netlist_scheme scheme in
    let* () = range "width" 2 10 width in
    range "strength" 1 256 strength

(* ------------------------------------------------------------- decoding *)

let int_field v name ~default =
  match Json.member name v with
  | None | Some Json.Null -> Ok default
  | Some (Json.Int i) -> Ok i
  | Some _ -> invalid "field %S must be an integer" name

let bool_field v name ~default =
  match Json.member name v with
  | None | Some Json.Null -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> invalid "field %S must be a boolean" name

let string_field v name ~default =
  match Json.member name v with
  | None | Some Json.Null -> Ok default
  | Some (Json.String s) -> Ok s
  | Some _ -> invalid "field %S must be a string" name

let required_string v name =
  match Json.member name v with
  | None | Some Json.Null -> invalid "missing required field %S" name
  | Some (Json.String s) -> Ok s
  | Some _ -> invalid "field %S must be a string" name

let opt_string v name =
  match Json.member name v with
  | None | Some Json.Null -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> invalid "field %S must be a string" name

let opt_number v name =
  match Json.member name v with
  | None | Some Json.Null -> Ok None
  | Some (Json.Float f) -> Ok (Some f)
  | Some (Json.Int i) -> Ok (Some (float_of_int i))
  | Some _ -> invalid "field %S must be a number" name

let kind_field v ~default =
  match Json.member "kind" v with
  | None | Some Json.Null -> Ok default
  | Some (Json.String "add") -> Ok Dfg.Add
  | Some (Json.String "mul") -> Ok Dfg.Mul
  | Some _ -> invalid "field \"kind\" must be \"add\" or \"mul\""

let scheme_field v ~default =
  match Json.member "scheme" v with
  | None | Some Json.Null -> Ok default
  | Some (Json.String s) -> (
    match scheme_of_label s with
    | Some s -> Ok s
    | None -> invalid "unknown scheme %S" s)
  | Some _ -> invalid "field \"scheme\" must be a string"

(* analyze's scheme admits "all" (= every scheme, the CLI default) *)
let scheme_all_field v =
  match Json.member "scheme" v with
  | None | Some Json.Null | Some (Json.String "all") -> Ok None
  | Some (Json.String s) -> (
    match scheme_of_label s with
    | Some s -> Ok (Some s)
    | None -> invalid "unknown scheme %S" s)
  | Some _ -> invalid "field \"scheme\" must be a string"

let decode v =
  let* op =
    match Json.member "op" v with
    | None | Some Json.Null -> invalid "missing required field \"op\""
    | Some (Json.String s) -> Ok s
    | Some _ -> invalid "field \"op\" must be a string"
  in
  match op with
  | "list" -> Ok List_benchmarks
  | "show" ->
    let* benchmark = required_string v "benchmark" in
    let* seed = int_field v "seed" ~default:1789 in
    Ok (Show { benchmark; seed })
  | "bind" ->
    let* benchmark = required_string v "benchmark" in
    let* seed = int_field v "seed" ~default:1789 in
    let* binder = string_field v "binder" ~default:"codesign" in
    let* kind = kind_field v ~default:Dfg.Mul in
    let* locked_fus = int_field v "locked_fus" ~default:2 in
    let* minterms_per_fu = int_field v "minterms_per_fu" ~default:2 in
    Ok (Bind { benchmark; seed; binder; kind; locked_fus; minterms_per_fu })
  | "lint" ->
    let* benchmark = opt_string v "benchmark" in
    let* seed = int_field v "seed" ~default:1789 in
    let* locked_fus = int_field v "locked_fus" ~default:2 in
    let* minterms_per_fu = int_field v "minterms_per_fu" ~default:2 in
    let* min_lambda = opt_number v "min_lambda" in
    Ok (Lint { benchmark; seed; locked_fus; minterms_per_fu; min_lambda })
  | "analyze" ->
    let* scheme = scheme_all_field v in
    let* width = int_field v "width" ~default:4 in
    let* strength = int_field v "strength" ~default:4 in
    let* seed = int_field v "seed" ~default:1789 in
    Ok (Analyze { scheme; width; strength; seed })
  | "attack" ->
    let* scheme = scheme_field v ~default:Pf in
    let* width = int_field v "width" ~default:4 in
    let* strength = int_field v "strength" ~default:2 in
    let* seed = int_field v "seed" ~default:1789 in
    let* max_iterations = int_field v "max_iterations" ~default:20_000 in
    let* portfolio = int_field v "portfolio" ~default:1 in
    Ok (Attack { scheme; width; strength; seed; max_iterations; portfolio })
  | "custom" ->
    let* text = required_string v "text" in
    let* format = string_field v "format" ~default:"dfg-text" in
    let* source =
      match format with
      | "dfg-text" -> Ok (Dfg_source text)
      | "expr" -> Ok (Expr_source text)
      | f -> invalid "field \"format\" must be \"dfg-text\" or \"expr\" (got %S)" f
    in
    let* kind = kind_field v ~default:Dfg.Mul in
    let* locked_fus = int_field v "locked_fus" ~default:2 in
    let* minterms_per_fu = int_field v "minterms_per_fu" ~default:2 in
    let* trace_length = int_field v "trace_length" ~default:256 in
    let* seed = int_field v "seed" ~default:1789 in
    Ok (Custom { source; kind; locked_fus; minterms_per_fu; trace_length; seed })
  | "export-cnf" ->
    let* scheme = scheme_field v ~default:Pf in
    let* width = int_field v "width" ~default:4 in
    let* strength = int_field v "strength" ~default:2 in
    let* miter = bool_field v "miter" ~default:false in
    let* seed = int_field v "seed" ~default:1789 in
    Ok (Export_cnf { scheme; width; strength; miter; seed })
  | "export-dfg" ->
    let* benchmark = required_string v "benchmark" in
    Ok (Export_dfg { benchmark })
  | "dot" ->
    let* benchmark = required_string v "benchmark" in
    Ok (Dot { benchmark })
  | other -> invalid "unknown op %S" other

let of_json v =
  let* job = decode v in
  let* () = validate job in
  Ok job

let digest t = Rb_util.Digest.json (to_json t)
