(** Content-addressed artifact store with single-flight computation.

    The executor keys every intermediate it produces — parsed
    benchmark contexts, locked netlists, lint/analysis reports, CNF
    text, whole job outcomes — by a digest of its canonicalized inputs
    ({!Rb_util.Digest}), so a workload that revisits the same
    (benchmark, seed, scheme, binder, budget) combination pays for the
    pipeline once.

    Lookups are {e single-flight}: when several pool workers ask for
    the same missing key concurrently, exactly one computes while the
    rest block on a condition variable and receive the finished
    artifact. That discipline is what keeps the [cache/hits] and
    [cache/misses] counters deterministic across [--jobs] — each
    distinct key accounts for exactly one miss no matter how many
    workers race for it, so the serve bench's hit rate is a property
    of the workload, not of scheduling. A computation that raises
    removes its pending entry (every waiter re-raises is {e not} the
    contract — waiters retry the compute themselves, each counting its
    own miss), so failures are never cached.

    The store is unbounded and in-memory; it lives as long as its
    executor. Sizing it is the workload's job — the serve bench's
    palette of ~40 distinct jobs peaks well under a megabyte. *)

type context = {
  benchmark : Rb_workload.Benchmark.t;
  schedule : Rb_sched.Schedule.t;
  trace : Rb_sim.Trace.t;
  allocation : Rb_hls.Allocation.t;
  k : Rb_sim.Kmatrix.t;
  profile : Rb_hls.Profile.t;
}
(** Everything derived from (benchmark, seed) before binding. *)

type artifact =
  | Context of context
  | Locked of Rb_netlist.Lock.locked
  | Text of string
  | Reports of Rb_lint.Report.t list
  | Analysis of Rb_analysis.Report.t
  | Value of Outcome.t

type t

val create : unit -> t

val find_or_compute : t -> key:string -> (unit -> artifact) -> artifact
(** Return the cached artifact for [key], or run the thunk (at most
    one concurrent run per key) and cache its result. Exceptions from
    the thunk propagate to the computing caller and leave the key
    absent; concurrent waiters then recompute. Counts one
    [cache/hits] per ready lookup and one [cache/misses] per compute
    attempt, both on the process-wide {!Rb_util.Metrics} registry and
    on the store's own {!stats}. *)

type stats = { hits : int; misses : int }

val stats : t -> stats
(** This store's own tallies (unlike the Metrics counters, unaffected
    by other stores in the process). *)

val size : t -> int
(** Number of ready entries. *)
