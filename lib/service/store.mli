(** Content-addressed artifact store with single-flight computation
    and optional byte-cost-accounted LRU eviction.

    The executor keys every intermediate it produces — parsed
    benchmark contexts, locked netlists, lint/analysis reports, CNF
    text, whole job outcomes — by a digest of its canonicalized inputs
    ({!Rb_util.Digest}), so a workload that revisits the same
    (benchmark, seed, scheme, binder, budget) combination pays for the
    pipeline once.

    Lookups are {e single-flight}: when several pool workers ask for
    the same missing key concurrently, exactly one computes while the
    rest block on a condition variable and receive the finished
    artifact through a result box shared with the computing worker.
    That discipline is what keeps the [cache/hits] and [cache/misses]
    counters deterministic across [--jobs] — each distinct key
    accounts for exactly one miss no matter how many workers race for
    it. A computation that raises removes its pending entry (waiters
    retry the compute themselves, each counting its own miss), so
    failures are never cached.

    With [cap_bytes] set the store is {e bounded}: each resident
    artifact is priced by its reachable words, and inserts that push
    the total over the cap evict least-recently-used Ready entries
    until it fits again ([cache/evictions] counter, [store/bytes]
    gauge). Eviction composes with single-flight: a waiter blocked on
    a pending computation receives the artifact through the shared box
    even if the cache slot is evicted before the waiter wakes, and
    in-flight (Pending) entries are never eviction victims. Without a
    cap the store is unbounded and in-memory, as before; it lives as
    long as its executor. *)

type context = {
  benchmark : Rb_workload.Benchmark.t;
  schedule : Rb_sched.Schedule.t;
  trace : Rb_sim.Trace.t;
  allocation : Rb_hls.Allocation.t;
  k : Rb_sim.Kmatrix.t;
  profile : Rb_hls.Profile.t;
}
(** Everything derived from (benchmark, seed) before binding. *)

type artifact =
  | Context of context
  | Locked of Rb_netlist.Lock.locked
  | Text of string
  | Reports of Rb_lint.Report.t list
  | Analysis of Rb_analysis.Report.t
  | Value of Outcome.t

type t

val create : ?cap_bytes:int -> unit -> t
(** [cap_bytes] bounds the resident artifact bytes; omitted means
    unbounded. [Invalid_argument] when [cap_bytes < 1]. *)

val cost_of : artifact -> int
(** The byte cost eviction accounts for one artifact: its reachable
    words times the word size. Each artifact is priced independently,
    so structure shared between resident artifacts is counted once
    {e per artifact} that reaches it — [stats.bytes] (and the
    [store/bytes] gauge) is a conservative {e upper} bound on real
    residency, and a tight [cap_bytes] may evict earlier than true
    memory use requires. Size [--store-cap] against this accounting,
    not against heap profiles. Exposed for tests and capacity
    planning. *)

val find_or_compute : t -> key:string -> (unit -> artifact) -> artifact
(** Return the cached artifact for [key], or run the thunk (at most
    one concurrent run per key) and cache its result, evicting LRU
    entries if the insert overflows the cap. Exceptions from the
    thunk propagate to the computing caller and leave the key absent;
    concurrent waiters then recompute. Counts one [cache/hits] per
    ready lookup and one [cache/misses] per compute attempt, both on
    the process-wide {!Rb_util.Metrics} registry and on the store's
    own {!stats}. The ["store/evict"] fault site makes an eviction
    pass fail benignly: the store stays over cap until the next
    insert instead of surfacing the fault. *)

type stats = { hits : int; misses : int; evictions : int; bytes : int }

val stats : t -> stats
(** This store's own tallies (unlike the Metrics counters, unaffected
    by other stores in the process). [bytes] is the current resident
    cost, [evictions] the total entries dropped by the cap. *)

val size : t -> int
(** Number of ready entries. *)
