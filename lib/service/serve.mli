(** The NDJSON job daemon behind [bindlock serve].

    One request per line on the way in, one response per line on the
    way out. Requests are [rb-job/1] envelopes — a {!Job} encoding
    plus [{"schema": "rb-job/1", "id": ..}] — and every line gets
    exactly one [rb-result/1] answer with the request's [id] echoed
    back and either an ["ok"] member (the {!Render.result_to_json}
    form of the outcome) or an ["error"] member ({!Error.to_json}).
    Malformed lines (bad JSON, wrong schema, invalid job) produce
    error responses, never a dead connection.

    Input is read from a raw file descriptor with [Unix.select]-based
    greedy batching: block for the first line, then drain whatever
    else has already arrived (up to a batch cap) and run the batch on
    the executor's pool. Responses are written in request order —
    output order equals input order regardless of [--jobs] — and
    flushed once per batch. A pipe of 10^5 jobs therefore saturates
    the pool without any client-side windowing, while an interactive
    client still gets each answer as soon as it is computed.

    Cancellation rides the shared {!Rb_util.Limits} cancel flag: the
    CLI's SIGINT handler sets it, blocking reads return [EINTR] and
    re-check it, and in-flight SAT attacks tied to the same flag stop
    at their next budget check. *)

type stop =
  | Eof  (** input exhausted; every request was answered *)
  | Cancelled  (** the cancel flag was raised (SIGINT) *)

val respond : Executor.t -> string -> string
(** Process one request line into one response line (no trailing
    newline). Exposed for tests and single-shot callers; [run] is
    this over batches. *)

val run :
  executor:Executor.t ->
  ?cancel:bool Atomic.t ->
  ?batch_size:int ->
  input:Unix.file_descr ->
  output:out_channel ->
  unit ->
  stop
(** Serve [input] until EOF or cancellation. [batch_size] caps the
    greedy batch (default [4 * pool jobs]). Blank lines are skipped.
    The final unterminated line, if any, is processed. *)

val run_socket :
  executor:Executor.t ->
  ?cancel:bool Atomic.t ->
  ?batch_size:int ->
  path:string ->
  unit ->
  stop
(** Listen on a Unix-domain socket at [path] (replacing any stale
    socket file) and serve connections sequentially, each as one
    {!run}. Returns when cancelled; the socket file is removed on the
    way out. *)
