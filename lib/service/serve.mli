(** The NDJSON job daemon behind [bindlock serve].

    One request per line on the way in, one response per line on the
    way out. Requests are [rb-job/1] envelopes — a {!Job} encoding
    plus [{"schema": "rb-job/1", "id": .., "deadline_ms": ..}] — and
    every line gets exactly one [rb-result/1] answer with the
    request's [id] echoed back and either an ["ok"] member (the
    {!Render.result_to_json} form of the outcome) or an ["error"]
    member ({!Error.to_json}). Malformed lines (bad JSON, wrong
    schema, invalid job, oversized line) produce error responses,
    never a dead connection.

    The daemon is built around bounded resources and fault isolation:

    - {b Line cap.} Request lines are capped (16 MiB by default): an
      oversized line costs bounded memory — the buffered prefix is
      dropped the moment the cap is crossed and the rest is discarded
      as it streams in — and answers one [invalid-request] error.
    - {b Deadlines.} An envelope [deadline_ms] becomes an absolute
      wall deadline tightening the executor's limit for that request;
      a job that outlives it answers the structured [limit] error and
      is never cached.
    - {b Admission.} With an in-flight cap, lines that would exceed it
      are shed with an [overloaded] error (counted under
      [serve/rejected]) instead of queueing without bound. Slots are
      claimed at batch-assembly time, in arrival order.
    - {b Isolation.} Each socket connection is served by its own
      thread; a client that hangs up mid-batch, an injected
      ["serve/conn"] fault, or any handler exception kills only that
      connection. The accept loop survives [EMFILE]/[ECONNABORTED]
      and marks every descriptor close-on-exec.
    - {b Drain.} The [drain] flag (SIGTERM) stops accepting input,
      finishes and flushes in-flight batches, and returns {!Drained};
      the [cancel] flag (SIGINT) additionally interrupts in-flight
      jobs through the shared {!Rb_util.Limits} cancel flag. Blocking
      reads and accepts are short-timeout [select] polls, so flag
      flips are noticed within a quarter second from any thread.

    Input is read from a raw file descriptor with greedy batching:
    block for the first line, then drain whatever else has already
    arrived (up to a batch cap) and run the batch on the executor's
    pool. Responses are written in request order — output order equals
    input order regardless of [--jobs] — and flushed once per batch. *)

type stop =
  | Eof  (** input exhausted; every request was answered *)
  | Cancelled  (** the cancel flag was raised (SIGINT) *)
  | Drained  (** the drain flag was raised (SIGTERM); in-flight work finished *)

val default_max_line : int
(** 16 MiB. *)

(** The in-flight job cap, shared by every connection of one daemon.
    Lock-free token counting: [try_acquire] either claims a slot or
    reports the daemon overloaded. *)
module Admission : sig
  type t

  val create : int -> t
  (** [Invalid_argument] when the cap is < 1. *)

  val try_acquire : t -> bool
  val release : t -> unit
  val in_flight : t -> int
end

val respond : Executor.t -> string -> string
(** Process one request line into one response line (no trailing
    newline), honouring the envelope's [deadline_ms]. Exposed for
    tests and single-shot callers; [run] is this over batches. *)

val run :
  executor:Executor.t ->
  ?cancel:bool Atomic.t ->
  ?drain:bool Atomic.t ->
  ?batch_size:int ->
  ?max_line:int ->
  ?admission:Admission.t ->
  input:Unix.file_descr ->
  output:out_channel ->
  unit ->
  stop
(** Serve [input] until EOF, drain or cancellation. [batch_size] caps
    the greedy batch (default [4 * pool jobs]); [max_line] caps the
    request line ({!default_max_line} by default); [admission], when
    given, sheds lines over the in-flight cap. Blank lines are
    skipped. The final unterminated line, if any, is processed. *)

val run_socket :
  executor:Executor.t ->
  ?cancel:bool Atomic.t ->
  ?drain:bool Atomic.t ->
  ?batch_size:int ->
  ?max_line:int ->
  ?max_inflight:int ->
  path:string ->
  unit ->
  stop
(** Listen on a Unix-domain socket at [path] (replacing any stale
    socket file) and serve each accepted connection on its own
    thread, all sharing one executor, one admission gate
    ([max_inflight]) and the stop flags. Returns once the stop flags
    fire {e and} every handler thread has finished, so flushed
    responses are on the wire; the socket file is removed on the way
    out. *)
