type benchmark_row = {
  name : string;
  source : string;
  adds : int;
  muls : int;
  cycles : int;
}

type bind_report = {
  benchmark : string;
  binder : string;
  kind : Rb_dfg.Dfg.op_kind;
  config : Rb_locking.Config.t;
  expected_errors : int;
  report : Rb_sim.Exec.error_report;
  registers : int;
  switching_rate : float;
}

type attack_outcome =
  | Broken of { iterations : int; key_correct : bool; key : string }
  | Budget_exceeded of { iterations : int }
  | Solver_limit of { iterations : int; reason : Rb_util.Limits.reason }

type attack_report = {
  description : string;
  stats : string;
  outcome : attack_outcome;
}

type t =
  | Benchmarks of { rows : benchmark_row list; binders : (string * string) list }
  | Shown of string
  | Bound of bind_report
  | Linted of Rb_lint.Report.t list
  | Analyzed of Rb_analysis.Report.t list
  | Attacked of attack_report
  | Custom_report of string
  | Exported of string
