module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Benchmark = Rb_workload.Benchmark
module Kmatrix = Rb_sim.Kmatrix
module Exec = Rb_sim.Exec
module Allocation = Rb_hls.Allocation
module Binding = Rb_hls.Binding
module Profile = Rb_hls.Profile
module Config = Rb_locking.Config
module Scheme = Rb_locking.Scheme
module Binder = Rb_hls.Binder
module Cost = Rb_core.Cost
module Json = Rb_util.Json
module Pool = Rb_util.Pool
module Metrics = Rb_util.Metrics

module Limits = Rb_util.Limits

type t = { pool : Pool.t; store : Store.t; limit : Limits.t option }

exception Fail of Error.t

let fail code fmt = Printf.ksprintf (fun m -> raise (Fail (Error.make code m))) fmt

let jobs_counter = Metrics.counter ~scope:"serve" "jobs"

let create ?limit ?store ~pool () =
  Rb_core.Binders.ensure_registered ();
  let store = match store with Some s -> s | None -> Store.create () in
  { pool; store; limit }

let store t = t.store
let pool t = t.pool

(* Artifact keys: a tag plus the canonicalized identifying fields.
   The "artifact:" prefix keeps them in a separate namespace from the
   "job:" whole-result keys. *)
let akey fields = "artifact:" ^ Rb_util.Digest.json (Json.Obj fields)

let find_benchmark name =
  match Benchmark.find name with
  | b -> b
  | exception Not_found -> fail Error.Unknown_target "unknown benchmark %S" name

(* -------------------------------------------------- shared artifacts *)

(* Everything derived from (benchmark, seed) before binding; shared by
   show, bind and lint on the same inputs. *)
let context t name seed =
  let b = find_benchmark name in
  let key =
    akey
      [
        ("artifact", Json.String "context");
        ("benchmark", Json.String b.Benchmark.name);
        ("seed", Json.Int seed);
      ]
  in
  match
    Store.find_or_compute t.store ~key (fun () ->
        let schedule = Benchmark.schedule b in
        let trace = Benchmark.trace ~seed b in
        let allocation = Allocation.for_schedule schedule in
        let k = Kmatrix.build trace in
        let profile = Profile.build trace in
        Store.Context { benchmark = b; schedule; trace; allocation; k; profile })
  with
  | Store.Context c -> c
  | _ -> assert false

let build_locked scheme width strength seed =
  let base = Rb_netlist.Circuits.adder ~width in
  let rng = Rb_util.Rng.create seed in
  match (scheme : Job.scheme) with
  | Job.Rll -> Rb_netlist.Lock.xor_random ~rng ~key_bits:strength base
  | Job.Pf ->
    let space = 1 lsl (2 * width) in
    let minterms = List.init strength (fun _ -> Rb_util.Rng.int rng space) in
    Rb_netlist.Lock.point_function ~minterms base
  | Job.Antisat -> Rb_netlist.Lock.anti_sat ~rng base
  | Job.Permnet -> Rb_netlist.Lock.permutation_network ~rng ~layers:strength base

(* Locked adders are shared across attack, analyze and export-cnf on
   the same (scheme, width, strength, seed). *)
let locked t scheme width strength seed =
  let key =
    akey
      [
        ("artifact", Json.String "locked");
        ("scheme", Json.String (Job.scheme_label scheme));
        ("width", Json.Int width);
        ("strength", Json.Int strength);
        ("seed", Json.Int seed);
      ]
  in
  match
    Store.find_or_compute t.store ~key (fun () ->
        Store.Locked (build_locked scheme width strength seed))
  with
  | Store.Locked l -> l
  | _ -> assert false

(* ----------------------------------------------------------- pipelines *)

let run_list () =
  let rows =
    List.map
      (fun b ->
        let schedule = Benchmark.schedule b in
        {
          Outcome.name = b.Benchmark.name;
          source = b.Benchmark.source;
          adds = List.length (Dfg.ops_of_kind b.Benchmark.dfg Dfg.Add);
          muls = List.length (Dfg.ops_of_kind b.Benchmark.dfg Dfg.Mul);
          cycles = Schedule.n_cycles schedule;
        })
      (Benchmark.all ())
  in
  let binders =
    List.map
      (fun name ->
        let (module B : Binder.S) = Binder.require name in
        (B.name, B.description))
      (Binder.names ())
  in
  Outcome.Benchmarks { rows; binders }

let run_show t ~benchmark ~seed =
  let ctx = context t benchmark seed in
  let b = ctx.Store.benchmark in
  let k = ctx.Store.k in
  let buf = Buffer.create 1024 in
  let f = Format.formatter_of_buffer buf in
  Format.fprintf f "%a@.%a@.source: %s@." Dfg.pp b.Benchmark.dfg Schedule.pp
    ctx.Store.schedule b.Benchmark.source;
  Format.fprintf f "workload: top-10 minterms carry %.0f%% of occurrences@.@."
    (100.0 *. Kmatrix.head_mass k ~n:10);
  List.iter
    (fun kind ->
      Format.fprintf f "top %s minterms:@." (Dfg.kind_label kind);
      List.iter
        (fun m ->
          Format.fprintf f "  %a x%d@." Rb_dfg.Minterm.pp m
            (Kmatrix.total_occurrences k m))
        (Kmatrix.top_minterms ~kind k ~n:5))
    [ Dfg.Add; Dfg.Mul ];
  Format.pp_print_flush f ();
  Outcome.Shown (Buffer.contents buf)

let run_bind t ~benchmark ~seed ~binder ~kind ~locked_fus:locked_fu_count
    ~minterms_per_fu =
  (match Binder.find binder with
   | Some _ -> ()
   | None -> fail Error.Unknown_target "unknown binder %S" binder);
  let ctx = context t benchmark seed in
  let { Store.benchmark = b; schedule; trace; allocation; k; profile } = ctx in
  let fus = Allocation.fu_ids allocation kind in
  if List.length fus < locked_fu_count then
    fail Error.Infeasible "only %d %s FUs allocated" (List.length fus)
      (Dfg.kind_label kind);
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind k ~n:10) in
  if Array.length candidates < minterms_per_fu then
    fail Error.Infeasible "workload too uniform: not enough candidate minterms";
  let locked_fus = List.filteri (fun i _ -> i < locked_fu_count) fus in
  let spec =
    { Rb_core.Codesign.scheme = Scheme.Sfll_rem; locked_fus; minterms_per_fu; candidates }
  in
  (* The co-designed configuration seeds input.config; binders with a
     fixed a-priori lock bind under it, the codesign binder re-derives
     its search spec from its shape. *)
  let codesigned = Rb_core.Codesign.heuristic k schedule allocation spec in
  let input =
    { Binder.schedule; allocation; profile; k;
      config = codesigned.Rb_core.Codesign.config; candidates }
  in
  let out = Binder.bind binder input in
  let config = out.Binder.config in
  let binding = out.Binder.binding in
  let report =
    Exec.application_errors schedule trace ~fu_of_op:(Binding.fu_array binding) ~config
  in
  Outcome.Bound
    {
      Outcome.benchmark = b.Benchmark.name;
      binder;
      kind;
      config;
      expected_errors = Cost.expected_errors k binding config;
      report;
      registers = Rb_hls.Registers.count binding;
      switching_rate = Rb_hls.Switching.rate binding profile;
    }

let lint_design ctx locked_fu_count minterms_per_fu min_lambda =
  let { Store.benchmark = b; schedule; allocation; k; _ } = ctx in
  List.filter_map
    (fun kind ->
      let fus = Allocation.fu_ids allocation kind in
      let candidates = Array.of_list (Kmatrix.top_minterms ~kind k ~n:10) in
      if fus = [] || Array.length candidates = 0 then None
      else begin
        let n_locked = min locked_fu_count (List.length fus) in
        let spec =
          { Rb_core.Codesign.scheme = Scheme.Sfll_rem;
            locked_fus = List.filteri (fun i _ -> i < n_locked) fus;
            minterms_per_fu = min minterms_per_fu (Array.length candidates);
            candidates }
        in
        let sol = Rb_core.Codesign.heuristic k schedule allocation spec in
        let binding = sol.Rb_core.Codesign.binding in
        Some
          (Rb_lint.Lint.design ?min_lambda ~candidates
             ~config:sol.Rb_core.Codesign.config
             ~registers:(Rb_hls.Registers.count binding)
             ~transfers:(Rb_lint.Hls_rules.transfer_count binding)
             ~subject:(Printf.sprintf "%s/%s" b.Benchmark.name (Dfg.kind_label kind))
             schedule allocation ~fu_of_op:(Binding.fu_array binding))
      end)
    [ Dfg.Add; Dfg.Mul ]

let lint_gates seed =
  let rng = Rb_util.Rng.create seed in
  let base = Rb_netlist.Circuits.adder ~width:4 in
  let space = 1 lsl 8 in
  [
    Rb_lint.Lint.netlist ~subject:"adder(4)" base;
    Rb_lint.Lint.netlist ~subject:"multiplier(4)" (Rb_netlist.Circuits.multiplier ~width:4);
    Rb_lint.Lint.locked (Rb_netlist.Lock.xor_random ~rng ~key_bits:4 base);
    Rb_lint.Lint.locked
      (Rb_netlist.Lock.point_function
         ~minterms:[ Rb_util.Rng.int rng space; Rb_util.Rng.int rng space ]
         base);
    Rb_lint.Lint.locked (Rb_netlist.Lock.anti_sat ~rng base);
    Rb_lint.Lint.locked (Rb_netlist.Lock.permutation_network ~rng ~layers:2 base);
  ]

let run_lint t ~benchmark ~seed ~locked_fus ~minterms_per_fu ~min_lambda =
  let benches =
    match benchmark with
    | None -> Benchmark.all ()
    | Some name -> [ find_benchmark name ]
  in
  let min_lambda_json =
    match min_lambda with None -> Json.Null | Some l -> Json.Float l
  in
  let design_reports =
    Pool.map_list t.pool
      ~f:(fun b ->
        let key =
          akey
            [
              ("artifact", Json.String "lint-design");
              ("benchmark", Json.String b.Benchmark.name);
              ("seed", Json.Int seed);
              ("locked_fus", Json.Int locked_fus);
              ("minterms_per_fu", Json.Int minterms_per_fu);
              ("min_lambda", min_lambda_json);
            ]
        in
        match
          Store.find_or_compute t.store ~key (fun () ->
              Store.Reports
                (lint_design
                   (context t b.Benchmark.name seed)
                   locked_fus minterms_per_fu min_lambda))
        with
        | Store.Reports rs -> rs
        | _ -> assert false)
      benches
  in
  let gate_reports =
    if benchmark <> None then []
    else begin
      let key = akey [ ("artifact", Json.String "lint-gates"); ("seed", Json.Int seed) ] in
      match
        Store.find_or_compute t.store ~key (fun () -> Store.Reports (lint_gates seed))
      with
      | Store.Reports rs -> rs
      | _ -> assert false
    end
  in
  Outcome.Linted (gate_reports @ List.concat design_reports)

let run_analyze t ~limit ~scheme ~width ~strength ~seed =
  let schemes =
    match scheme with
    | None -> [ Job.Rll; Job.Pf; Job.Antisat; Job.Permnet ]
    | Some s -> [ s ]
  in
  let reports =
    Pool.map_list t.pool
      ~f:(fun s ->
        let l = locked t s width strength seed in
        let key =
          akey
            [
              ("artifact", Json.String "analysis");
              ("scheme", Json.String (Job.scheme_label s));
              ("width", Json.Int width);
              ("strength", Json.Int strength);
              ("seed", Json.Int seed);
            ]
        in
        match
          Store.find_or_compute t.store ~key (fun () ->
              let r =
                Rb_analysis.Report.analyze ?limit
                  ~subject:l.Rb_netlist.Lock.description l.Rb_netlist.Lock.circuit
              in
              (* Report.analyze degrades in place on a volatile stop
                 (stopped = Deadline/Cancelled) instead of raising.
                 Raising here removes the Pending entry, so the
                 truncated report surfaces as a structured limit error
                 and is never cached — the artifact key doesn't encode
                 the deadline, and a later identical request must
                 recompute in full rather than replay the partial
                 report. Budget stops (conflicts/propagations) are a
                 deterministic property of the executor's fixed limit
                 and stay cacheable. *)
              (match r.Rb_analysis.Report.stopped with
              | Some ((Limits.Deadline | Limits.Cancelled) as reason) ->
                fail Error.Limit "analysis of %s stopped: %s"
                  l.Rb_netlist.Lock.description
                  (Limits.reason_label reason)
              | Some _ | None -> ());
              Store.Analysis r)
        with
        | Store.Analysis r -> r
        | _ -> assert false)
      schemes
  in
  Outcome.Analyzed reports

let run_attack t ~limit ~scheme ~width ~strength ~seed ~max_iterations ~portfolio =
  let l = locked t scheme width strength seed in
  let stats =
    Format.asprintf "%a" Rb_netlist.Netlist.pp_stats l.Rb_netlist.Lock.circuit
  in
  let outcome =
    match
      Rb_sat.Attack.attack_locked ~max_iterations ?limit ~pool:t.pool ~portfolio l
    with
    | Rb_sat.Attack.Broken { key; iterations } ->
      let bits =
        String.init (Array.length key) (fun i -> if key.(i) then '1' else '0')
      in
      Outcome.Broken
        {
          iterations;
          key_correct = Rb_sat.Attack.key_is_correct l key;
          key = bits;
        }
    | Rb_sat.Attack.Budget_exceeded { iterations } ->
      Outcome.Budget_exceeded { iterations }
    | Rb_sat.Attack.Solver_limit { iterations; reason = Limits.Deadline } ->
      (* A wall-clock stop depends on when the job ran, not on what it
         was; surface the structured limit error (never cached)
         instead of an outcome the store would replay to later
         requests with laxer deadlines. *)
      fail Error.Limit "attack stopped by deadline after %d DIP iterations" iterations
    | Rb_sat.Attack.Solver_limit { iterations; reason = Limits.Cancelled } ->
      fail Error.Limit "attack cancelled after %d DIP iterations" iterations
    | Rb_sat.Attack.Solver_limit { iterations; reason } ->
      Outcome.Solver_limit { iterations; reason }
  in
  Outcome.Attacked
    { Outcome.description = l.Rb_netlist.Lock.description; stats; outcome }

let run_custom t ~source ~kind ~locked_fus:locked_fu_count ~minterms_per_fu
    ~trace_length ~seed =
  ignore t;
  let parsed =
    match (source : Job.custom_source) with
    | Job.Expr_source s -> Rb_dfg.Expr.compile s
    | Job.Dfg_source s -> Rb_dfg.Dfg_text.of_string s
  in
  let dfg =
    match parsed with
    | Ok dfg -> dfg
    | Error e -> raise (Fail (Error.make Error.Invalid_request e))
  in
  let schedule = Rb_sched.Scheduler.path_based dfg in
  let allocation = Allocation.for_schedule schedule in
  (* heavy-tailed synthetic workload for the user kernel *)
  let rng = Rb_util.Rng.create seed in
  let palette = [| 0; 3; 16; 64; 128; 255 |] in
  let trace =
    Rb_sim.Trace.generate dfg ~n:trace_length ~f:(fun _ _ ->
        if Rb_util.Rng.int rng 10 < 8 then Rb_util.Rng.pick rng palette
        else Rb_util.Rng.int rng 256)
  in
  let k = Kmatrix.build trace in
  let fus = Allocation.fu_ids allocation kind in
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind k ~n:10) in
  if List.length fus < locked_fu_count then
    fail Error.Infeasible "only %d %s FUs allocated" (List.length fus)
      (Dfg.kind_label kind);
  if Array.length candidates < minterms_per_fu then
    fail Error.Infeasible "not enough candidate minterms in the synthesized workload";
  let spec =
    { Rb_core.Codesign.scheme = Scheme.Sfll_rem;
      locked_fus = List.filteri (fun i _ -> i < locked_fu_count) fus;
      minterms_per_fu; candidates }
  in
  let solution = Rb_core.Codesign.heuristic k schedule allocation spec in
  let buf = Buffer.create 1024 in
  let f = Format.formatter_of_buffer buf in
  Format.fprintf f "%a@.%a, allocated %a@." Dfg.pp dfg Schedule.pp schedule
    Allocation.pp allocation;
  Format.fprintf f "co-designed locking: %a@." Config.pp
    solution.Rb_core.Codesign.config;
  Format.fprintf f "expected application errors (Eqn. 2): %d over %d samples@."
    solution.Rb_core.Codesign.errors trace_length;
  let baseline = Rb_hls.Area_binding.bind schedule allocation in
  Format.fprintf f "same lock under area-aware binding:   %d@."
    (Cost.expected_errors k baseline solution.Rb_core.Codesign.config);
  Format.pp_print_flush f ();
  Outcome.Custom_report (Buffer.contents buf)

let run_export_cnf t ~scheme ~width ~strength ~miter ~seed =
  let l = locked t scheme width strength seed in
  let d =
    if miter then Rb_sat.Dimacs.miter l.Rb_netlist.Lock.circuit
    else Rb_sat.Dimacs.of_netlist l.Rb_netlist.Lock.circuit
  in
  Outcome.Exported
    (Rb_sat.Dimacs.to_string
       ~comments:
         [
           Printf.sprintf "%s on a %d-bit adder%s" l.Rb_netlist.Lock.description width
             (if miter then " (SAT-attack miter)" else "");
         ]
       d)

let execute t ~limit (job : Job.t) =
  match job with
  | Job.List_benchmarks -> run_list ()
  | Job.Show { benchmark; seed } -> run_show t ~benchmark ~seed
  | Job.Bind { benchmark; seed; binder; kind; locked_fus; minterms_per_fu } ->
    run_bind t ~benchmark ~seed ~binder ~kind ~locked_fus ~minterms_per_fu
  | Job.Lint { benchmark; seed; locked_fus; minterms_per_fu; min_lambda } ->
    run_lint t ~benchmark ~seed ~locked_fus ~minterms_per_fu ~min_lambda
  | Job.Analyze { scheme; width; strength; seed } ->
    run_analyze t ~limit ~scheme ~width ~strength ~seed
  | Job.Attack { scheme; width; strength; seed; max_iterations; portfolio } ->
    run_attack t ~limit ~scheme ~width ~strength ~seed ~max_iterations ~portfolio
  | Job.Custom { source; kind; locked_fus; minterms_per_fu; trace_length; seed } ->
    run_custom t ~source ~kind ~locked_fus ~minterms_per_fu ~trace_length ~seed
  | Job.Export_cnf { scheme; width; strength; miter; seed } ->
    run_export_cnf t ~scheme ~width ~strength ~miter ~seed
  | Job.Export_dfg { benchmark } ->
    let b = find_benchmark benchmark in
    Outcome.Exported (Rb_dfg.Dfg_text.to_string b.Benchmark.dfg)
  | Job.Dot { benchmark } ->
    let b = find_benchmark benchmark in
    Outcome.Exported (Dfg.to_dot b.Benchmark.dfg)

(* The wall-clock half of the limit checks. Deadline and cancel stops
   depend on the clock and on who pulled the flag, not on the job, so
   they become structured limit errors — which the store never caches —
   rather than truncated outcomes a later identical request would be
   served from cache. *)
let volatile_stop limit =
  match limit with
  | None -> None
  | Some l -> (
    match Limits.interrupted l with
    | Some Limits.Deadline -> Some "deadline exceeded"
    | Some Limits.Cancelled -> Some "cancelled"
    | Some _ | None -> None)

let check_volatile limit ~when_ =
  match volatile_stop limit with
  | Some what -> fail Error.Limit "%s %s" what when_
  | None -> ()

let run ?deadline_s t job =
  Metrics.incr jobs_counter;
  let limit =
    match deadline_s with
    | None -> t.limit
    | Some d ->
      Some (Limits.with_deadline (Option.value t.limit ~default:Limits.none) d)
  in
  match Job.validate job with
  | Error e -> Error e
  | Ok () -> (
    match
      Store.find_or_compute t.store ~key:("job:" ^ Job.digest job) (fun () ->
          (* A job that spent its whole deadline queued behind a batch
             (or arrived after SIGINT) stops here instead of starting
             work it can no longer finish in time. *)
          check_volatile limit ~when_:"before execution";
          let outcome = execute t ~limit job in
          (* Pipelines that degrade in place (analysis marking itself
             stopped) rather than reporting a reason: a volatile stop
             during the run means the outcome may be truncated, so
             refuse to cache or return it. *)
          check_volatile limit ~when_:"during execution";
          Store.Value outcome)
    with
    | Store.Value o -> Ok o
    | _ -> Error (Error.make Error.Internal "corrupt cache entry")
    | exception Fail e -> Error e
    | exception e -> Error (Error.make Error.Internal (Printexc.to_string e)))

let run_batch ?deadline_s t jobs =
  Pool.map_array t.pool
    ~f:(fun job ->
      let t0 = Metrics.now_s () in
      let r = run ?deadline_s t job in
      (r, Metrics.now_s () -. t0))
    jobs
