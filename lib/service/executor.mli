(** Runs {!Job.t} values against the library pipelines.

    The executor is the one place that wires jobs into the binding,
    locking, lint, analysis and attack code — every CLI subcommand and
    every serve request goes through {!run}, so the pipeline exists
    exactly once. It owns:

    - a {!Rb_util.Pool} for the fan-out the old subcommands did
      themselves (per-benchmark lints, per-scheme analyses); nested
      maps run inline, so [run] itself may be called from a pool task
      (the serve batch path);
    - a {!Store.t} content-addressed cache, keyed by job and artifact
      digests, so repeated work (the same benchmark context under two
      binders, the same locked adder under attack and export-cnf) is
      computed once;
    - an optional {!Rb_util.Limits.t} threaded into the budgeted
      pipelines (SAT attack, analysis); the CLI passes none — keeping
      its outputs byte-identical to the pre-service commands — while
      serve passes a cancel flag so SIGINT interrupts long jobs. A
      per-request wall deadline can tighten that limit per [run] call.

    Failures are values: [run] never raises and never exits. Job
    errors (unknown benchmark, infeasible lock, tripped budget) come
    back as {!Error.t}; unexpected exceptions are folded into
    [Internal]. Successful outcomes are cached by job digest; failures
    are never cached, so a transient limit does not poison the
    store. Wall-clock stops (a passed deadline, a raised cancel flag)
    always surface as [Limit] {e errors}, never as truncated outcomes:
    an outcome shaped by when the job happened to run must not be
    cached under a digest that only describes what the job was. *)

type t

val create :
  ?limit:Rb_util.Limits.t -> ?store:Store.t -> pool:Rb_util.Pool.t -> unit -> t
(** Registers the built-in binders as a side effect (the registry is
    idempotent). [store] defaults to a fresh unbounded store; pass a
    [Store.create ~cap_bytes] store to bound resident artifacts. *)

val store : t -> Store.t
val pool : t -> Rb_util.Pool.t

val run : ?deadline_s:float -> t -> Job.t -> (Outcome.t, Error.t) result
(** Validate, consult the store, execute on a miss. [deadline_s] is an
    {e absolute} time on the {!Rb_util.Metrics.now_s} clock tightening
    the executor's limit for this request only; a job whose deadline
    passes before or during execution answers a [Limit] error (and is
    not cached). Also counts one [serve/jobs] on the
    {!Rb_util.Metrics} registry. *)

val run_batch :
  ?deadline_s:float -> t -> Job.t array -> ((Outcome.t, Error.t) result * float) array
(** [run] over the pool, preserving order; each slot carries the
    job's wall-clock seconds (for latency accounting — wall time is
    never part of an {!Outcome.t}). [deadline_s] applies to every job
    of the batch. *)
