(** Runs {!Job.t} values against the library pipelines.

    The executor is the one place that wires jobs into the binding,
    locking, lint, analysis and attack code — every CLI subcommand and
    every serve request goes through {!run}, so the pipeline exists
    exactly once. It owns:

    - a {!Rb_util.Pool} for the fan-out the old subcommands did
      themselves (per-benchmark lints, per-scheme analyses); nested
      maps run inline, so [run] itself may be called from a pool task
      (the serve batch path);
    - a {!Store.t} content-addressed cache, keyed by job and artifact
      digests, so repeated work (the same benchmark context under two
      binders, the same locked adder under attack and export-cnf) is
      computed once;
    - an optional {!Rb_util.Limits.t} threaded into the budgeted
      pipelines (SAT attack, analysis); the CLI passes none — keeping
      its outputs byte-identical to the pre-service commands — while
      serve passes a cancel flag so SIGINT interrupts long jobs.

    Failures are values: [run] never raises and never exits. Job
    errors (unknown benchmark, infeasible lock, tripped budget) come
    back as {!Error.t}; unexpected exceptions are folded into
    [Internal]. Successful outcomes are cached by job digest; failures
    are never cached, so a transient limit does not poison the
    store. *)

type t

val create :
  ?limit:Rb_util.Limits.t -> ?store:Store.t -> pool:Rb_util.Pool.t -> unit -> t
(** Registers the built-in binders as a side effect (the registry is
    idempotent). [store] defaults to a fresh empty store. *)

val store : t -> Store.t
val pool : t -> Rb_util.Pool.t

val run : t -> Job.t -> (Outcome.t, Error.t) result
(** Validate, consult the store, execute on a miss. Also counts one
    [serve/jobs] on the {!Rb_util.Metrics} registry. *)

val run_batch : t -> Job.t array -> ((Outcome.t, Error.t) result * float) array
(** [run] over the pool, preserving order; each slot carries the
    job's wall-clock seconds (for latency accounting — wall time is
    never part of an {!Outcome.t}). *)
