(** The structured error type of the job API.

    Every failure a job can produce — malformed request, unknown
    benchmark, infeasible locking parameters, tripped resource budget,
    or an unexpected exception — becomes one of these records instead
    of a [Printf] + [exit]. Thin clients render [message] exactly
    where the pre-service CLI printed its error strings, so the CLI
    surface is unchanged; the serve daemon serializes the whole record
    into the [rb-result/1] error member. *)

type code =
  | Invalid_request  (** malformed JSON, bad field type, out-of-bounds parameter *)
  | Unknown_target  (** a name that resolves against no registry entry *)
  | Infeasible  (** well-formed, but the design cannot satisfy it *)
  | Limit  (** a resource budget or deadline stopped the job *)
  | Overloaded  (** shed by admission control: the daemon is at its in-flight cap *)
  | Internal  (** unexpected exception; the message is diagnostic only *)

type t = { code : code; message : string }

val make : code -> string -> t

val code_label : code -> string
(** Stable wire strings: ["invalid-request"], ["unknown-target"],
    ["infeasible"], ["limit"], ["overloaded"], ["internal"]. *)

val code_of_label : string -> code option

val to_json : t -> Rb_util.Json.t
(** [{"code": <label>, "message": <message>}]. *)

val of_json : Rb_util.Json.t -> t option
