module Json = Rb_util.Json
module Limits = Rb_util.Limits
module Pool = Rb_util.Pool

type stop = Eof | Cancelled

(* ------------------------------------------------------------ protocol *)

let respond executor line =
  let id, result =
    match Json.of_string line with
    | Error msg ->
      (Json.Null, Error (Error.make Error.Invalid_request ("parse error: " ^ msg)))
    | Ok v ->
      let id = Option.value ~default:Json.Null (Json.member "id" v) in
      let result =
        match Json.member "schema" v with
        | Some (Json.String "rb-job/1") -> (
          match Job.of_json v with
          | Ok job -> Result.map Render.result_to_json (Executor.run executor job)
          | Error e -> Error e)
        | Some (Json.String s) ->
          Error (Error.make Error.Invalid_request (Printf.sprintf "unsupported schema %S" s))
        | _ ->
          Error (Error.make Error.Invalid_request "missing required field \"schema\"")
      in
      (id, result)
  in
  let body =
    match result with Ok ok -> ("ok", ok) | Error e -> ("error", Error.to_json e)
  in
  Json.to_string
    (Json.Obj [ ("schema", Json.String "rb-result/1"); ("id", id); body ])

(* -------------------------------------------------------- line reading *)

(* Raw-fd reading (no stdlib buffering — buffered bytes would be
   invisible to the select probe below). *)
type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable pending : string;
  mutable eof : bool;
}

let take_line r =
  match String.index_opt r.pending '\n' with
  | None -> None
  | Some i ->
    let line = String.sub r.pending 0 i in
    r.pending <- String.sub r.pending (i + 1) (String.length r.pending - i - 1);
    Some line

let rec refill r ~block ~cancel =
  if Limits.cancelled cancel then `Cancelled
  else begin
    let ready =
      block
      ||
      match Unix.select [ r.fd ] [] [] 0.0 with
      | [], _, _ -> false
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if not ready then `Would_block
    else
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 ->
        r.eof <- true;
        `Data
      | n ->
        r.pending <- r.pending ^ Bytes.sub_string r.chunk 0 n;
        `Data
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill r ~block ~cancel
  end

let rec next_line r ~block ~cancel =
  match take_line r with
  | Some line -> `Line line
  | None ->
    if r.eof then
      if r.pending = "" then `Eof
      else begin
        (* final unterminated line *)
        let line = r.pending in
        r.pending <- "";
        `Line line
      end
    else (
      match refill r ~block ~cancel with
      | `Data -> next_line r ~block ~cancel
      | `Would_block -> `Drained
      | `Cancelled -> `Cancelled)

(* Greedy batch: block for the first line, then take whatever is
   already buffered or readable without blocking, up to the cap. *)
let gather r ~cancel ~max_batch =
  let rec go acc n =
    if n >= max_batch then List.rev acc
    else
      match next_line r ~block:(acc = []) ~cancel with
      | `Line l -> go (l :: acc) (n + 1)
      | `Drained | `Eof | `Cancelled -> List.rev acc
  in
  go [] 0

(* ------------------------------------------------------------ the loop *)

let run ~executor ?(cancel = Limits.new_cancel ()) ?batch_size ~input ~output () =
  let pool = Executor.pool executor in
  let max_batch =
    match batch_size with Some n -> max 1 n | None -> max 1 (4 * Pool.jobs pool)
  in
  let r = { fd = input; chunk = Bytes.create 65536; pending = ""; eof = false } in
  let rec loop () =
    if Limits.cancelled cancel then Cancelled
    else begin
      let batch = gather r ~cancel ~max_batch in
      match List.filter (fun l -> String.trim l <> "") batch with
      | [] ->
        if Limits.cancelled cancel then Cancelled
        else if r.eof && r.pending = "" then Eof
        else loop ()
      | lines ->
        let responses = Pool.map_list pool ~f:(respond executor) lines in
        List.iter
          (fun s ->
            output_string output s;
            output_char output '\n')
          responses;
        flush output;
        loop ()
    end
  in
  loop ()

let run_socket ~executor ?(cancel = Limits.new_cancel ()) ?batch_size ~path () =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  let finally () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  let rec accept_loop () =
    if Limits.cancelled cancel then Cancelled
    else
      match Unix.accept sock with
      | conn, _ ->
        let out = Unix.out_channel_of_descr conn in
        (* A client that hangs up mid-batch only loses its own
           connection; the daemon keeps accepting. *)
        (try ignore (run ~executor ~cancel ?batch_size ~input:conn ~output:out ())
         with Sys_error _ | Unix.Unix_error _ -> ());
        (try flush out with Sys_error _ -> ());
        (try Unix.close conn with Unix.Unix_error _ -> ());
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  Fun.protect ~finally accept_loop
