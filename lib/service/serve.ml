module Json = Rb_util.Json
module Limits = Rb_util.Limits
module Metrics = Rb_util.Metrics
module Faults = Rb_util.Faults
module Pool = Rb_util.Pool

type stop = Eof | Cancelled | Drained

let default_max_line = 16 * 1024 * 1024
let serve_rejected = Metrics.counter ~scope:"serve" "rejected"

(* --------------------------------------------------------- admission *)

module Admission = struct
  type t = { cap : int; inflight : int Atomic.t }

  let create cap =
    if cap < 1 then invalid_arg "Serve.Admission.create: cap must be >= 1";
    { cap; inflight = Atomic.make 0 }

  (* Compare-and-set rather than fetch-and-add-then-rollback: N racing
     acquires must not transiently overshoot the counter, or a request
     could be shed as overloaded while in-flight slots are actually
     free. A CAS retry only rejects when the observed count genuinely
     reached the cap. *)
  let rec try_acquire t =
    let n = Atomic.get t.inflight in
    if n >= t.cap then false
    else if Atomic.compare_and_set t.inflight n (n + 1) then true
    else try_acquire t

  let release t = ignore (Atomic.fetch_and_add t.inflight (-1))
  let in_flight t = Atomic.get t.inflight
end

(* ------------------------------------------------------------ protocol *)

let error_response ~id e =
  Json.to_string
    (Json.Obj
       [ ("schema", Json.String "rb-result/1"); ("id", id); ("error", Error.to_json e) ])

(* Best-effort id echo for responses produced without running the job
   (overload shedding): worth one cheap parse so a well-formed client
   can still correlate the rejection. *)
let request_id line =
  match Json.of_string line with
  | Ok v -> Option.value ~default:Json.Null (Json.member "id" v)
  | Error _ -> Json.Null

let overloaded_response line =
  error_response ~id:(request_id line)
    (Error.make Error.Overloaded "in-flight cap reached; retry later")

let oversized_response max_line =
  error_response ~id:Json.Null
    (Error.make Error.Invalid_request
       (Printf.sprintf "request line exceeds %d bytes" max_line))

(* [deadline_ms] lives on the envelope, not the job: {!Job.of_json}
   ignores it, so the job digest — and therefore the cache key — is
   independent of how patient the client is. *)
let deadline_of v =
  match Json.member "deadline_ms" v with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int ms) when ms > 0 ->
    Ok (Some (Metrics.now_s () +. (float_of_int ms /. 1000.)))
  | Some (Json.Float ms) when ms > 0. -> Ok (Some (Metrics.now_s () +. (ms /. 1000.)))
  | Some _ ->
    Error
      (Error.make Error.Invalid_request
         "\"deadline_ms\" must be a positive number of milliseconds")

let respond executor line =
  let id, result =
    match Json.of_string line with
    | Error msg ->
      (Json.Null, Error (Error.make Error.Invalid_request ("parse error: " ^ msg)))
    | Ok v ->
      let id = Option.value ~default:Json.Null (Json.member "id" v) in
      let result =
        match Json.member "schema" v with
        | Some (Json.String "rb-job/1") -> (
          match deadline_of v with
          | Error e -> Error e
          | Ok deadline_s -> (
            match Job.of_json v with
            | Ok job ->
              Result.map Render.result_to_json (Executor.run ?deadline_s executor job)
            | Error e -> Error e))
        | Some (Json.String s) ->
          Error (Error.make Error.Invalid_request (Printf.sprintf "unsupported schema %S" s))
        | _ ->
          Error (Error.make Error.Invalid_request "missing required field \"schema\"")
      in
      (id, result)
  in
  match result with
  | Ok ok ->
    Json.to_string
      (Json.Obj [ ("schema", Json.String "rb-result/1"); ("id", id); ("ok", ok) ])
  | Error e -> error_response ~id e

(* -------------------------------------------------------- line reading *)

(* Raw-fd reading (no stdlib buffering — buffered bytes would be
   invisible to the select probes below) into one growable byte region:
   valid bytes live at [buf.[start .. start+len-1]], appends compact or
   double the region, and [scanned] remembers the newline-free prefix
   so the splitter never rescans bytes. Consuming a line advances
   [start] without copying the remainder, which keeps a connection that
   streams many lines linear in total bytes instead of quadratic. *)
type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable buf : Bytes.t;
  mutable start : int;
  mutable len : int;
  mutable scanned : int;
  mutable skipping : bool;
      (* an oversized line was answered; discard until its newline *)
  max_line : int;
  mutable eof : bool;
}

type flags = { cancel : bool Atomic.t; drain : bool Atomic.t }

let make_reader ~max_line fd =
  {
    fd;
    chunk = Bytes.create 65536;
    buf = Bytes.create 65536;
    start = 0;
    len = 0;
    scanned = 0;
    skipping = false;
    max_line = max 1 max_line;
    eof = false;
  }

let append r src n =
  let cap = Bytes.length r.buf in
  if r.start + r.len + n > cap then
    if r.len + n <= cap then begin
      Bytes.blit r.buf r.start r.buf 0 r.len;
      r.start <- 0
    end
    else begin
      let cap' = ref (max cap 1) in
      while !cap' < r.len + n do
        cap' := !cap' * 2
      done;
      let buf' = Bytes.create !cap' in
      Bytes.blit r.buf r.start buf' 0 r.len;
      r.buf <- buf';
      r.start <- 0
    end;
  Bytes.blit src 0 r.buf (r.start + r.len) n;
  r.len <- r.len + n

let consume_through r i =
  let consumed = i - r.start + 1 in
  r.start <- i + 1;
  r.len <- r.len - consumed;
  r.scanned <- 0

let discard_all r =
  r.start <- 0;
  r.len <- 0;
  r.scanned <- 0

(* One buffered line, if a complete one is available. [`Oversized] is
   returned exactly once per too-long line — when its newline arrives
   beyond the cap, or as soon as [max_line] newline-free bytes have
   accumulated (the buffered prefix is dropped immediately and the
   rest of the line is discarded as it streams in, so a hostile
   endless line costs bounded memory). *)
let rec take_line r =
  if r.len = 0 then `Nothing
  else begin
    let limit = r.start + r.len in
    let rec find i =
      if i >= limit then None
      else if Bytes.get r.buf i = '\n' then Some i
      else find (i + 1)
    in
    match find (r.start + r.scanned) with
    | Some i when r.skipping ->
      consume_through r i;
      r.skipping <- false;
      take_line r
    | Some i when i - r.start > r.max_line ->
      consume_through r i;
      `Oversized
    | Some i ->
      let line = Bytes.sub_string r.buf r.start (i - r.start) in
      consume_through r i;
      `Line line
    | None ->
      r.scanned <- r.len;
      if r.skipping then begin
        discard_all r;
        `Nothing
      end
      else if r.len > r.max_line then begin
        discard_all r;
        r.skipping <- true;
        `Oversized
      end
      else `Nothing
  end

(* Blocking refills poll with a short select timeout instead of
   parking in [read]: signal handlers only flip atomics, so the read
   loop itself has to notice the cancel (SIGINT) and drain (SIGTERM)
   flags — from whichever thread is serving the connection. *)
let rec refill r ~block flags =
  if Limits.cancelled flags.cancel then `Stop Cancelled
  else if block && Atomic.get flags.drain then `Stop Drained
  else begin
    let ready =
      match Unix.select [ r.fd ] [] [] (if block then 0.25 else 0.0) with
      | [], _, _ -> false
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if not ready then if block then refill r ~block flags else `Would_block
    else
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 ->
        r.eof <- true;
        `Data
      | n ->
        append r r.chunk n;
        `Data
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill r ~block flags
  end

let rec next_line r ~block flags =
  match take_line r with
  | `Line line -> `Line line
  | `Oversized -> `Oversized
  | `Nothing ->
    if r.eof then
      if r.len = 0 || r.skipping then `Eof
      else begin
        (* final unterminated line *)
        let line = Bytes.sub_string r.buf r.start r.len in
        discard_all r;
        `Line line
      end
    else (
      match refill r ~block flags with
      | `Data -> next_line r ~block flags
      | `Would_block -> `Empty
      | `Stop s -> `Stop s)

(* Greedy batch: block for the first line, then take whatever is
   already buffered or readable without blocking, up to the cap. A
   stop noticed mid-gather is carried out of the batch so the gathered
   lines are still answered before the loop winds down. *)
let gather r flags ~max_batch =
  let stop = ref None in
  let rec go acc n =
    if n >= max_batch then List.rev acc
    else
      match next_line r ~block:(acc = []) flags with
      | `Line l -> go (`Line l :: acc) (n + 1)
      | `Oversized -> go (`Oversized :: acc) (n + 1)
      | `Empty | `Eof -> List.rev acc
      | `Stop s ->
        stop := Some s;
        List.rev acc
  in
  let items = go [] 0 in
  (items, !stop)

(* ------------------------------------------------------------ the loop *)

let run ~executor ?(cancel = Limits.new_cancel ()) ?(drain = Atomic.make false)
    ?batch_size ?(max_line = default_max_line) ?admission ~input ~output () =
  let pool = Executor.pool executor in
  let max_batch =
    match batch_size with Some n -> max 1 n | None -> max 1 (4 * Pool.jobs pool)
  in
  let r = make_reader ~max_line input in
  let flags = { cancel; drain } in
  let rec loop () =
    if Limits.cancelled cancel then Cancelled
    else begin
      let items, stop = gather r flags ~max_batch in
      let items =
        List.filter
          (function `Line l -> String.trim l <> "" | `Oversized -> true)
          items
      in
      match items with
      | [] -> (
        match stop with
        | Some s -> s
        | None ->
          if r.eof && r.len = 0 then Eof
          else if Atomic.get drain then Drained
          else loop ())
      | items ->
        (* Admission decisions are taken here, sequentially, before the
           batch fans out: the order in which lines claim in-flight
           slots is the order they arrived on this connection, not a
           pool scheduling accident. *)
        let decided =
          List.map
            (function
              | `Oversized -> `Answer (oversized_response max_line)
              | `Line l -> (
                match admission with
                | None -> `Run l
                | Some adm ->
                  if Admission.try_acquire adm then `Admitted (l, adm)
                  else begin
                    Metrics.incr serve_rejected;
                    `Answer (overloaded_response l)
                  end))
            items
        in
        let responses =
          Pool.map_list pool
            ~f:(fun decision ->
              match decision with
              | `Answer s -> s
              | `Run l -> respond executor l
              | `Admitted (l, adm) ->
                Fun.protect
                  ~finally:(fun () -> Admission.release adm)
                  (fun () -> respond executor l))
            decided
        in
        List.iter
          (fun s ->
            output_string output s;
            output_char output '\n')
          responses;
        flush output;
        (match stop with Some s -> s | None -> loop ())
    end
  in
  loop ()

let run_socket ~executor ?(cancel = Limits.new_cancel ()) ?(drain = Atomic.make false)
    ?batch_size ?max_line ?max_inflight ~path () =
  let admission = Option.map Admission.create max_inflight in
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  let active = Atomic.make 0 in
  let ordinal = ref 0 in
  (* One handler thread per accepted connection. Everything a handler
     can raise — a ["serve/conn"] injected fault, a client hanging up
     mid-write, a bad descriptor — is caught inside the thread, so one
     connection's death never reaches the accept loop or a sibling
     connection. *)
  let spawn conn ord =
    ignore (Atomic.fetch_and_add active 1);
    let handler () =
      Fun.protect
        ~finally:(fun () -> ignore (Atomic.fetch_and_add active (-1)))
        (fun () ->
          (try
             Faults.inject ~site:"serve/conn" ~key:(string_of_int ord);
             let out = Unix.out_channel_of_descr conn in
             (try
                ignore
                  (run ~executor ~cancel ~drain ?batch_size ?max_line ?admission
                     ~input:conn ~output:out ())
              with Sys_error _ | Unix.Unix_error _ -> ());
             try flush out with Sys_error _ -> ()
           with Faults.Injected _ -> ());
          try Unix.close conn with Unix.Unix_error _ -> ())
    in
    match Thread.create handler () with
    | (_ : Thread.t) -> ()
    | exception _ ->
      (* pthread_create can fail (EAGAIN) under exactly the resource
         pressure this daemon is hardened against. Shed the connection
         instead of letting the exception kill the accept loop: roll
         back the active count the handler would have released, close
         the fd it would have closed, and back off like the EMFILE
         path so in-flight handlers get a chance to finish. *)
      ignore (Atomic.fetch_and_add active (-1));
      (try Unix.close conn with Unix.Unix_error _ -> ());
      Thread.delay 0.05
  in
  let rec accept_loop () =
    if Limits.cancelled cancel then Cancelled
    else if Atomic.get drain then Drained
    else
      match Unix.select [ sock ] [] [] 0.25 with
      | [], _, _ -> accept_loop ()
      | _ -> (
        match Unix.accept ~cloexec:true sock with
        | conn, _ ->
          incr ordinal;
          spawn conn !ordinal;
          accept_loop ()
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          (* the client gave up between connect and accept *)
          accept_loop ()
        | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
          (* out of descriptors: back off, let handlers finish and
             release theirs, keep serving *)
          Thread.delay 0.05;
          accept_loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  let finally () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  let stop = Fun.protect ~finally accept_loop in
  (* Drain: handlers finish their batches and flush. Cancel: handlers
     notice the flag at their next poll and bail. Either way, wait for
     them before returning so responses are on the wire. *)
  let rec wait () =
    if Atomic.get active > 0 then begin
      Thread.delay 0.02;
      wait ()
    end
  in
  wait ();
  stop
