(** Typed description of every unit of work [bindlock] can perform.

    A {!t} value is the single entry point into the pipeline: the CLI
    subcommands build one from their parsed flags, the serve daemon
    decodes one per [rb-job/1] request line, and the bench harness
    replays arrays of them. Executing a job is {!Executor.run}'s
    business; this module only describes, encodes and validates it.

    The JSON codec is total over the closed variant and applies the
    CLI's historical defaults for omitted fields, so
    [{"op":"bind","benchmark":"dct"}] means exactly
    [bindlock bind -b dct]. {!of_json} validates parameter bounds at
    decode time — a width of 77 is rejected as [Invalid_request]
    before any pipeline code runs, never as a mid-pipeline
    exception. *)

type scheme = Rll | Pf | Antisat | Permnet

val scheme_label : scheme -> string
(** ["rll"], ["pf"], ["antisat"], ["permnet"]. *)

val scheme_of_label : string -> scheme option

type custom_source =
  | Dfg_source of string  (** DFG text format, [Rb_dfg.Dfg_text] *)
  | Expr_source of string  (** behavioural expression code, [Rb_dfg.Expr] *)

type t =
  | List_benchmarks
  | Show of { benchmark : string; seed : int }
  | Bind of {
      benchmark : string;
      seed : int;
      binder : string;
      kind : Rb_dfg.Dfg.op_kind;
      locked_fus : int;
      minterms_per_fu : int;
    }
  | Lint of {
      benchmark : string option;  (** [None] lints the suite + gate gadgets *)
      seed : int;
      locked_fus : int;
      minterms_per_fu : int;
      min_lambda : float option;
    }
  | Analyze of {
      scheme : scheme option;  (** [None] analyzes all four schemes *)
      width : int;
      strength : int;
      seed : int;
    }
  | Attack of {
      scheme : scheme;  (** [Antisat] is rejected by {!validate} *)
      width : int;
      strength : int;
      seed : int;
      max_iterations : int;
      portfolio : int;
          (** racing solver members, 1..64; does not change the
              reported result (see {!Rb_sat.Attack}) *)
    }
  | Custom of {
      source : custom_source;
      kind : Rb_dfg.Dfg.op_kind;
      locked_fus : int;
      minterms_per_fu : int;
      trace_length : int;
      seed : int;
    }
  | Export_cnf of {
      scheme : scheme;  (** [Antisat] is rejected by {!validate} *)
      width : int;
      strength : int;
      miter : bool;
      seed : int;
    }
  | Export_dfg of { benchmark : string }
  | Dot of { benchmark : string }

val op : t -> string
(** Wire name of the operation: ["list"], ["show"], ["bind"],
    ["lint"], ["analyze"], ["attack"], ["custom"], ["export-cnf"],
    ["export-dfg"], ["dot"]. *)

val to_json : t -> Rb_util.Json.t
(** Full encoding: every field is emitted, including ones at their
    default value, so the encoding of a job is independent of how it
    was spelled. Envelope fields ([schema], [id]) are the transport's
    business and are not included. *)

val validate : t -> (unit, Error.t) result
(** Parameter-bound checks that need no registry or file system:
    widths (2..8, or 2..10 for export-cnf), strength 1..256,
    locked-fus and minterms 1..64, trace-length 1..1_000_000,
    max-iterations 1..10_000_000, and scheme compatibility. Name
    resolution (benchmarks, binders) happens at execution time. *)

val of_json : Rb_util.Json.t -> (t, Error.t) result
(** Decode and {!validate}. Unknown fields are ignored (the serve
    envelope carries [schema] and [id] alongside the job fields);
    omitted fields take the CLI defaults; wrong field types and
    out-of-bounds values are [Invalid_request] errors. *)

val digest : t -> string
(** Content address of the job: [Rb_util.Digest.json (to_json t)].
    Two jobs digest equal iff they mean the same work, regardless of
    spelling (field order, defaulted vs. explicit fields). *)
