(** Structured results of executed jobs.

    An {!t} is what {!Executor.run} returns on success: pure data,
    detached from any output medium. {!Render} turns one into the
    CLI's historical text or pretty JSON; the serve daemon embeds the
    JSON form in an [rb-result/1] line; tests compare outcomes
    structurally. Nothing here is allowed to depend on wall-clock
    time — attack durations, for example, are measured by the caller
    around {!Executor.run} — so outcomes are byte-reproducible across
    [--jobs] values and cache hits. *)

type benchmark_row = {
  name : string;
  source : string;
  adds : int;
  muls : int;
  cycles : int;
}

type bind_report = {
  benchmark : string;
  binder : string;
  kind : Rb_dfg.Dfg.op_kind;
  config : Rb_locking.Config.t;
  expected_errors : int;  (** cost Eqn. 2 under the produced binding *)
  report : Rb_sim.Exec.error_report;
  registers : int;
  switching_rate : float;
}

type attack_outcome =
  | Broken of {
      iterations : int;
      key_correct : bool;
      key : string;
          (** recovered key as a '0'/'1' bitstring in key-index order —
              the canonical lex-min key, identical at every
              jobs/portfolio combination (what makes attack reports
              byte-comparable across parallelism settings) *)
    }
  | Budget_exceeded of { iterations : int }
  | Solver_limit of { iterations : int; reason : Rb_util.Limits.reason }

type attack_report = {
  description : string;  (** the locked construction's description *)
  stats : string;  (** pre-rendered netlist statistics line *)
  outcome : attack_outcome;
}

type t =
  | Benchmarks of {
      rows : benchmark_row list;
      binders : (string * string) list;  (** (name, description) *)
    }
  | Shown of string  (** pre-rendered schedule/workload text *)
  | Bound of bind_report
  | Linted of Rb_lint.Report.t list
  | Analyzed of Rb_analysis.Report.t list
  | Attacked of attack_report
  | Custom_report of string  (** pre-rendered co-design report text *)
  | Exported of string  (** raw export payload (DFG text, DIMACS, dot) *)
