module Json = Rb_util.Json

type code =
  | Invalid_request
  | Unknown_target
  | Infeasible
  | Limit
  | Overloaded
  | Internal

type t = { code : code; message : string }

let make code message = { code; message }

let code_label = function
  | Invalid_request -> "invalid-request"
  | Unknown_target -> "unknown-target"
  | Infeasible -> "infeasible"
  | Limit -> "limit"
  | Overloaded -> "overloaded"
  | Internal -> "internal"

let code_of_label = function
  | "invalid-request" -> Some Invalid_request
  | "unknown-target" -> Some Unknown_target
  | "infeasible" -> Some Infeasible
  | "limit" -> Some Limit
  | "overloaded" -> Some Overloaded
  | "internal" -> Some Internal
  | _ -> None

let to_json t =
  Json.Obj
    [ ("code", Json.String (code_label t.code)); ("message", Json.String t.message) ]

let of_json v =
  match (Json.member "code" v, Json.member "message" v) with
  | Some (Json.String code), Some (Json.String message) ->
    Option.map (fun code -> { code; message }) (code_of_label code)
  | _ -> None
