module Metrics = Rb_util.Metrics
module Faults = Rb_util.Faults

type context = {
  benchmark : Rb_workload.Benchmark.t;
  schedule : Rb_sched.Schedule.t;
  trace : Rb_sim.Trace.t;
  allocation : Rb_hls.Allocation.t;
  k : Rb_sim.Kmatrix.t;
  profile : Rb_hls.Profile.t;
}

type artifact =
  | Context of context
  | Locked of Rb_netlist.Lock.locked
  | Text of string
  | Reports of Rb_lint.Report.t list
  | Analysis of Rb_analysis.Report.t
  | Value of Outcome.t

type ready = { artifact : artifact; cost : int; mutable last_use : int }

(* A pending entry carries a result box shared with every waiter: the
   computing worker publishes into the box before broadcasting, so a
   waiter that wakes up after the Ready entry has already been evicted
   (tiny cap, hot churn) still receives the artifact it waited for —
   eviction can shrink the cache but never break single-flight. *)
type pending = { mutable settled : artifact option }

type entry = Ready of ready | Pending of pending

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  table : (string, entry) Hashtbl.t;
  cap_bytes : int option;
  mutable bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; bytes : int }

let cache_hits = Metrics.counter ~scope:"cache" "hits"
let cache_misses = Metrics.counter ~scope:"cache" "misses"
let cache_evictions = Metrics.counter ~scope:"cache" "evictions"
let store_bytes = Metrics.gauge ~scope:"store" "bytes"

let create ?cap_bytes () =
  (match cap_bytes with
  | Some c when c < 1 -> invalid_arg "Store.create: cap_bytes must be >= 1"
  | _ -> ());
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    table = Hashtbl.create 64;
    cap_bytes;
    bytes = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Byte cost of keeping an artifact resident: the words reachable from
   it. Pure data (netlists, traces, reports, outcome records), so the
   traversal is cheap relative to the compute it prices and the result
   is a stable property of the value, not of when it was built. *)
let cost_of artifact = Obj.reachable_words (Obj.repr artifact) * (Sys.word_size / 8)

let touch t r =
  t.tick <- t.tick + 1;
  r.last_use <- t.tick

(* Evict least-recently-used Ready entries until the resident bytes
   fit the cap. Pending entries are never victims (a computation in
   flight owns its slot), and ties cannot happen — [last_use] ticks
   are unique. Called with the mutex held. The ["store/evict"] fault
   site models a failing eviction pass: the store degrades by staying
   temporarily over cap (the next insert retries) instead of
   propagating the failure into the caller's lookup. *)
let enforce_cap t =
  match t.cap_bytes with
  | None -> ()
  | Some cap ->
    (try
       Faults.inject ~site:"store/evict" ~key:(string_of_int t.tick);
       while t.bytes > cap do
         let victim =
           Hashtbl.fold
             (fun key entry acc ->
               match (entry, acc) with
               | Pending _, _ -> acc
               | Ready r, Some (_, best) when best.last_use <= r.last_use -> acc
               | Ready r, _ -> Some (key, r))
             t.table None
         in
         match victim with
         | None -> raise Exit (* only pending entries left: nothing evictable *)
         | Some (key, r) ->
           Hashtbl.remove t.table key;
           t.bytes <- t.bytes - r.cost;
           t.evictions <- t.evictions + 1;
           Metrics.incr cache_evictions
       done
     with Exit | Faults.Injected _ -> ());
    Metrics.set_gauge store_bytes (float_of_int t.bytes)

let rec find_or_compute t ~key f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some (Ready r) ->
    t.hits <- t.hits + 1;
    touch t r;
    Mutex.unlock t.mutex;
    Metrics.incr cache_hits;
    r.artifact
  | Some (Pending p) ->
    (* Another worker is computing this key: wait on the shared box.
       The box (not the table) is the hand-off, so the artifact
       reaches every waiter even if the Ready entry is evicted before
       the waiter re-runs. An empty box after the broadcast means the
       computing worker failed; re-inspect and compute ourselves. *)
    Condition.wait t.cond t.mutex;
    (match p.settled with
    | Some artifact ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.mutex;
      Metrics.incr cache_hits;
      artifact
    | None ->
      Mutex.unlock t.mutex;
      find_or_compute t ~key f)
  | None ->
    let p = { settled = None } in
    Hashtbl.replace t.table key (Pending p);
    t.misses <- t.misses + 1;
    Mutex.unlock t.mutex;
    Metrics.incr cache_misses;
    let result =
      try f ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock t.mutex;
        Hashtbl.remove t.table key;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        Printexc.raise_with_backtrace e bt
    in
    let cost = cost_of result in
    Mutex.lock t.mutex;
    p.settled <- Some result;
    let r = { artifact = result; cost; last_use = 0 } in
    touch t r;
    Hashtbl.replace t.table key (Ready r);
    t.bytes <- t.bytes + cost;
    enforce_cap t;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    result

let stats t =
  Mutex.lock t.mutex;
  let s =
    { hits = t.hits; misses = t.misses; evictions = t.evictions; bytes = t.bytes }
  in
  Mutex.unlock t.mutex;
  s

let size t =
  Mutex.lock t.mutex;
  let n =
    Hashtbl.fold
      (fun _ e acc -> match e with Ready _ -> acc + 1 | Pending _ -> acc)
      t.table 0
  in
  Mutex.unlock t.mutex;
  n
