module Metrics = Rb_util.Metrics

type context = {
  benchmark : Rb_workload.Benchmark.t;
  schedule : Rb_sched.Schedule.t;
  trace : Rb_sim.Trace.t;
  allocation : Rb_hls.Allocation.t;
  k : Rb_sim.Kmatrix.t;
  profile : Rb_hls.Profile.t;
}

type artifact =
  | Context of context
  | Locked of Rb_netlist.Lock.locked
  | Text of string
  | Reports of Rb_lint.Report.t list
  | Analysis of Rb_analysis.Report.t
  | Value of Outcome.t

type entry = Ready of artifact | Pending

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  table : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type stats = { hits : int; misses : int }

let cache_hits = Metrics.counter ~scope:"cache" "hits"
let cache_misses = Metrics.counter ~scope:"cache" "misses"

let create () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    table = Hashtbl.create 64;
    hits = 0;
    misses = 0;
  }

let rec find_or_compute t ~key f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some (Ready artifact) ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.mutex;
    Metrics.incr cache_hits;
    artifact
  | Some Pending ->
    (* Another worker is computing this key: wait for it to settle,
       then re-inspect. The loop (rather than a single wait) covers
       both spurious wakeups and the computing worker failing, in
       which case the entry is gone and we compute it ourselves. *)
    Condition.wait t.cond t.mutex;
    Mutex.unlock t.mutex;
    find_or_compute t ~key f
  | None ->
    Hashtbl.replace t.table key Pending;
    t.misses <- t.misses + 1;
    Mutex.unlock t.mutex;
    Metrics.incr cache_misses;
    let result =
      try f ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock t.mutex;
        Hashtbl.remove t.table key;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        Printexc.raise_with_backtrace e bt
    in
    Mutex.lock t.mutex;
    Hashtbl.replace t.table key (Ready result);
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    result

let stats t =
  Mutex.lock t.mutex;
  let s = { hits = t.hits; misses = t.misses } in
  Mutex.unlock t.mutex;
  s

let size t =
  Mutex.lock t.mutex;
  let n =
    Hashtbl.fold (fun _ e acc -> match e with Ready _ -> acc + 1 | Pending -> acc) t.table 0
  in
  Mutex.unlock t.mutex;
  n
