(** Renders {!Outcome.t} values for the two CLI surfaces.

    The text renderer reproduces the pre-service subcommand output
    byte-for-byte (the golden tests under [test/golden/] hold it to
    that); the JSON renderer produces the same documents the old
    [--format json] paths built, pretty-printed with
    {!Rb_util.Json.to_string_pretty}.

    Attack durations are the one rendering input that is not part of
    the outcome: wall time is measured by the caller around
    {!Executor.run} (a cache hit takes microseconds; the outcome must
    not embed the first run's timing) and passed in as
    [?attack_wall_s]. *)

val result_to_json : Outcome.t -> Rb_util.Json.t
(** The machine form. Schemas match the historical surfaces:
    [list]'s [{"benchmarks": .., "binders": ..}], [bind]'s config
    report, lint's report array, analyze's ["rb-analyze/1"]; attack
    gains a structured form (it had no JSON surface before); text
    payloads (show, custom, exports) wrap as [{"text": ..}]. *)

val to_text : ?attack_wall_s:float -> Outcome.t -> string
(** The human form, exactly as the pre-service subcommands printed it
    (including trailing newlines); export payloads are returned
    verbatim. [attack_wall_s] (default [0.]) fills the ["(%.2fs)"]
    field of attack outcome lines. *)

val print : ?attack_wall_s:float -> [ `Text | `Json ] -> Outcome.t -> unit
(** Write to stdout: [`Text] is [to_text] verbatim, [`Json] is the
    pretty JSON document plus a newline. *)
