(** HLS design rules — schedules, bindings, and their cost reports.

    These rules re-check the invariants the paper's theorems lean on
    (Thm. 1: binding validity per cycle) on {e raw} artifacts, so a
    broken schedule or operation-to-FU array produced outside
    {!Rb_hls.Binding.make}'s guarded constructor is diagnosed instead
    of raising. Rules:

    - {!rule_precedence} [HLS-PREC] (error): an operation is scheduled
      no later than one of its operand producers — the schedule
      violates DFG precedence.
    - {!rule_oversubscribed} [HLS-OVERSUB] (error): two operations in
      the same cycle are bound to the same FU (paper Thm. 1's validity
      condition).
    - {!rule_kind} [HLS-KIND] (error): an operation is bound to an FU
      of the wrong kind, to an FU outside the allocation, or the
      binding array does not cover the DFG.
    - {!rule_cost} [HLS-COST] (error): a declared register or transfer
      count disagrees with the counts recomputed from the binding —
      the overhead report does not describe the design it ships with. *)

val rule_precedence : string
val rule_oversubscribed : string
val rule_kind : string
val rule_cost : string

val check_schedule : Rb_sched.Schedule.t -> Diagnostic.t list

val check_binding :
  Rb_sched.Schedule.t -> Rb_hls.Allocation.t -> fu_of_op:int array -> Diagnostic.t list
(** Validity of a raw operation-to-FU map against a schedule and an
    allocation, without constructing a {!Rb_hls.Binding.t}. *)

val transfer_count : Rb_hls.Binding.t -> int
(** Cross-FU value movements: for every operation, the number of
    distinct consumer FUs other than the producing FU. The transfer
    metric the area-aware binder [20] trades against registers. *)

val check_costs :
  ?registers:int -> ?transfers:int -> Rb_hls.Binding.t -> Diagnostic.t list
(** Cross-check declared overhead numbers against
    {!Rb_hls.Registers.count} and {!transfer_count}. *)
