exception Lint_error of Report.t

let netlist ?(subject = "netlist") c = Report.make ~subject (Netlist_rules.check c)

let locked ?subject (l : Rb_netlist.Lock.locked) =
  let subject =
    match subject with Some s -> s | None -> l.Rb_netlist.Lock.description
  in
  Report.make ~subject (Netlist_rules.check l.Rb_netlist.Lock.circuit)

let design ?min_lambda ?key_bits ?candidates ?config ?registers ?transfers ~subject
    schedule allocation ~fu_of_op =
  let sched_diags = Hls_rules.check_schedule schedule in
  let bind_diags = Hls_rules.check_binding schedule allocation ~fu_of_op in
  let lock_diags =
    match config with
    | None -> []
    | Some config ->
      let input_bits = 2 * Rb_dfg.Word.width in
      Locking_rules.check_config ?min_lambda ?key_bits ?candidates ~input_bits config
  in
  let cost_diags =
    if sched_diags = [] && bind_diags = [] && (registers <> None || transfers <> None)
    then
      Hls_rules.check_costs ?registers ?transfers
        (Rb_hls.Binding.make schedule allocation ~fu_of_op)
    else []
  in
  Report.make ~subject (sched_diags @ bind_diags @ lock_diags @ cost_diags)

let assert_clean report = if not (Report.is_clean report) then raise (Lint_error report)

let () =
  Printexc.register_printer (function
    | Lint_error report -> Some (Format.asprintf "Lint_error:@.%a" Report.pp report)
    | _ -> None)
