module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Allocation = Rb_hls.Allocation
module Binding = Rb_hls.Binding
module D = Diagnostic

let rule_precedence = "HLS-PREC"
let rule_oversubscribed = "HLS-OVERSUB"
let rule_kind = "HLS-KIND"
let rule_cost = "HLS-COST"

let check_schedule schedule =
  let dfg = Schedule.dfg schedule in
  let diags = ref [] in
  for op = 0 to Dfg.op_count dfg - 1 do
    let cycle = Schedule.cycle_of schedule op in
    List.iter
      (fun pred ->
        let pc = Schedule.cycle_of schedule pred in
        if pc >= cycle then
          diags :=
            D.error ~rule:rule_precedence (D.Op op)
              (Printf.sprintf
                 "scheduled in cycle %d but consumes op %d scheduled in cycle %d" cycle
                 pred pc)
              ~hint:"single-cycle FUs need every producer strictly before its consumer"
            :: !diags)
      (Dfg.predecessors dfg op)
  done;
  List.rev !diags

let check_binding schedule allocation ~fu_of_op =
  let dfg = Schedule.dfg schedule in
  let n_ops = Dfg.op_count dfg in
  let total = Allocation.total allocation in
  if Array.length fu_of_op <> n_ops then
    [
      D.error ~rule:rule_kind D.Whole_design
        (Printf.sprintf "binding covers %d operations, the DFG has %d"
           (Array.length fu_of_op) n_ops);
    ]
  else begin
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    Array.iteri
      (fun op fu ->
        if fu < 0 || fu >= total then
          emit
            (D.error ~rule:rule_kind (D.Op op)
               (Printf.sprintf "bound to FU %d, outside the allocation of %d units" fu
                  total))
        else begin
          let want = (Dfg.op dfg op).Dfg.kind in
          let got = Allocation.kind_of_fu allocation fu in
          if got <> want then
            emit
              (D.error ~rule:rule_kind (D.Op op)
                 (Printf.sprintf "%s operation bound to %s FU %d" (Dfg.kind_label want)
                    (Dfg.kind_label got) fu))
        end)
      fu_of_op;
    (* one operation per FU per cycle (Thm. 1) *)
    let seen = Hashtbl.create 64 in
    Array.iteri
      (fun op fu ->
        if fu >= 0 && fu < total then begin
          let cycle = Schedule.cycle_of schedule op in
          match Hashtbl.find_opt seen (cycle, fu) with
          | Some first ->
            emit
              (D.error ~rule:rule_oversubscribed (D.Fu fu)
                 (Printf.sprintf "executes ops %d and %d in the same cycle %d" first op
                    cycle)
                 ~hint:"a valid binding gives each FU at most one operation per cycle")
          | None -> Hashtbl.add seen (cycle, fu) op
        end)
      fu_of_op;
    List.rev !diags
  end

let transfer_count binding =
  let schedule = Binding.schedule binding in
  let dfg = Schedule.dfg schedule in
  let count = ref 0 in
  for op = 0 to Dfg.op_count dfg - 1 do
    let producer = Binding.fu_of_op binding op in
    let consumer_fus =
      Dfg.successors dfg op
      |> List.map (Binding.fu_of_op binding)
      |> List.sort_uniq Int.compare
    in
    count := !count + List.length (List.filter (fun fu -> fu <> producer) consumer_fus)
  done;
  !count

let check_costs ?registers ?transfers binding =
  let mismatch rule what declared actual =
    D.error ~rule D.Whole_design
      (Printf.sprintf "declared %s count %d, but the binding needs %d" what declared
         actual)
      ~hint:"regenerate the overhead report from the shipped binding"
  in
  let regs =
    match registers with
    | Some declared ->
      let actual = Rb_hls.Registers.count binding in
      if declared <> actual then [ mismatch rule_cost "register" declared actual ] else []
    | None -> []
  in
  let xfers =
    match transfers with
    | Some declared ->
      let actual = transfer_count binding in
      if declared <> actual then [ mismatch rule_cost "transfer" declared actual ] else []
    | None -> []
  in
  regs @ xfers
