module Minterm = Rb_dfg.Minterm
module Config = Rb_locking.Config
module Scheme = Rb_locking.Scheme
module Resilience = Rb_locking.Resilience
module D = Diagnostic

let rule_resilience = "LOCK-RESIL"
let rule_overlap = "LOCK-OVERLAP"
let rule_candidates = "LOCK-CAND"

let check_config ?min_lambda ?key_bits ?candidates ~input_bits config =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let locked = Config.locked_fus config in
  (* Eqn. 1 resilience bound *)
  (match min_lambda with
   | None -> ()
   | Some target ->
     List.iter
       (fun fu ->
         let minterms = Minterm.Set.cardinal (Config.minterms_of config fu) in
         let kb =
           match key_bits with
           | Some k -> k
           | None -> Scheme.key_bits (Config.scheme config) ~minterms ~input_bits
         in
         let lambda =
           Resilience.lambda_minterms ~key_bits:kb ~correct_keys:1 ~input_bits ~minterms
         in
         if lambda < target then begin
           let budget =
             Resilience.max_minterms_for ~key_bits:kb ~correct_keys:1 ~input_bits
               ~min_lambda:target
           in
           emit
             (D.error ~rule:rule_resilience (D.Fu fu)
                (Printf.sprintf
                   "%d locked minterms under a %d-bit key predict only %.0f SAT \
                    iterations (target %.0f)"
                   minterms kb lambda target)
                ~hint:
                  (if budget = 0 then
                     "no minterm count meets the target at this key length; raise the \
                      key budget"
                   else
                     Printf.sprintf "lock at most %d minterms on this FU (Eqn. 1)" budget))
         end)
       locked);
  (* overlapping locked sets *)
  let rec pairs = function
    | [] -> ()
    | fu :: rest ->
      let set = Config.minterms_of config fu in
      List.iter
        (fun fu' ->
          let shared = Minterm.Set.inter set (Config.minterms_of config fu') in
          let n = Minterm.Set.cardinal shared in
          if n > 0 then
            emit
              (D.warning ~rule:rule_overlap (D.Fu fu')
                 (Printf.sprintf "shares %d locked minterm%s with FU %d" n
                    (if n = 1 then "" else "s")
                    fu)
                 ~hint:
                   "distinct locked sets per FU maximize Eqn. 2 error for the same \
                    key budget"))
        rest;
      pairs rest
  in
  pairs locked;
  (* candidate-list membership *)
  (match candidates with
   | None -> ()
   | Some cands ->
     let cand_set = Minterm.Set.of_list (Array.to_list cands) in
     List.iter
       (fun fu ->
         Minterm.Set.iter
           (fun m ->
             if not (Minterm.Set.mem m cand_set) then
               emit
                 (D.error ~rule:rule_candidates (D.Fu fu)
                    (Format.asprintf "locked minterm %a is outside the candidate list C"
                       Minterm.pp m)
                    ~hint:
                      "co-design draws locked inputs from the top-occurrence candidate \
                       list; off-list minterms carry no measured error mass"))
           (Config.minterms_of config fu))
       locked);
  List.rev !diags
