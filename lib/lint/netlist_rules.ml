module Netlist = Rb_netlist.Netlist
module Analysis = Rb_netlist.Analysis
module D = Diagnostic

let rule_cycle = "NET-CYCLE"
let rule_dead = "NET-DEAD"
let rule_key_mute = "NET-KEY-MUTE"
let rule_key_strip = "NET-KEY-STRIP"
let rule_const_out = "NET-CONST-OUT"

let check c =
  let n_inputs = Netlist.n_inputs c in
  let n_keys = Netlist.n_keys c in
  let base = n_inputs + n_keys in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* structural well-formedness *)
  List.iter
    (fun (gate, net) ->
      emit
        (D.error ~rule:rule_cycle (D.Gate gate)
           (Printf.sprintf
              "operand references net %d, which gate %d (driving net %d) may not read"
              net gate (base + gate))
           ~hint:"gates may only read inputs, keys and earlier gates; a forward \
                  reference is a combinational cycle"))
    (Analysis.structural_errors c);
  List.iter
    (fun (pos, net) ->
      emit
        (D.error ~rule:rule_cycle (D.Output pos)
           (Printf.sprintf "output declared on nonexistent net %d" net)))
    (Analysis.invalid_outputs c);
  let cone = Analysis.output_cone c in
  let live = Analysis.live_nets c in
  let consts = Analysis.constants c in
  (* dead gates *)
  Array.iteri
    (fun i _ ->
      if not cone.(base + i) then
        emit
          (D.warning ~rule:rule_dead (D.Gate i)
             (Printf.sprintf "gate drives net %d but feeds no output" (base + i))
             ~hint:"remove the gate or route it into an output cone"))
    (Netlist.gates c);
  (* key influence *)
  for k = 0 to n_keys - 1 do
    let net = n_inputs + k in
    if not cone.(net) then
      emit
        (D.error ~rule:rule_key_mute (D.Key_input k)
           "key input has no structural path to any output"
           ~hint:"an unconnected key bit adds no security; wire the key gate into \
                  live logic or drop the bit")
    else if not live.(net) then
      emit
        (D.error ~rule:rule_key_strip (D.Key_input k)
           "every path from this key input to an output is cut by constant folding"
           ~hint:"the lock is removable by constant propagation (e.g. k XOR k); \
                  re-insert the key gate on non-redundant logic")
  done;
  (* outputs driven by keys or constants *)
  Array.iteri
    (fun pos net ->
      if net >= n_inputs && net < base then
        emit
          (D.error ~rule:rule_const_out (D.Output pos)
             (Printf.sprintf "output is key input %d itself — the key bit is observable"
                (net - n_inputs)))
      else if net >= 0 && net < Netlist.n_nets c then
        match consts.(net) with
        | Analysis.Known v ->
          emit
            (D.warning ~rule:rule_const_out (D.Output pos)
               (Printf.sprintf "output is statically constant %b" v))
        | Analysis.Unknown -> ())
    (Netlist.outputs c);
  List.rev !diags
