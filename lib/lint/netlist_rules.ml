module Netlist = Rb_netlist.Netlist
module Analysis = Rb_netlist.Analysis
module Ternary = Rb_analysis.Ternary
module Probability = Rb_analysis.Probability
module D = Diagnostic

let rule_cycle = "NET-CYCLE"
let rule_dead = "NET-DEAD"
let rule_key_mute = "NET-KEY-MUTE"
let rule_key_strip = "NET-KEY-STRIP"
let rule_const_out = "NET-CONST-OUT"
let rule_key_skew = "NET-KEY-SKEW"

(* Probability window outside which a key gate's output counts as
   skewed: matching ProbLock's leak criterion, a gate that is almost
   always 0 (or 1) under random keys hands its key bit to a
   probability-profiling attacker. *)
let skew_lo = 0.05
let skew_hi = 0.95

let check c =
  let n_inputs = Netlist.n_inputs c in
  let n_keys = Netlist.n_keys c in
  let base = n_inputs + n_keys in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* structural well-formedness *)
  List.iter
    (fun (gate, net) ->
      emit
        (D.error ~rule:rule_cycle (D.Gate gate)
           (Printf.sprintf
              "operand references net %d, which gate %d (driving net %d) may not read"
              net gate (base + gate))
           ~hint:"gates may only read inputs, keys and earlier gates; a forward \
                  reference is a combinational cycle"))
    (Analysis.structural_errors c);
  List.iter
    (fun (pos, net) ->
      emit
        (D.error ~rule:rule_cycle (D.Output pos)
           (Printf.sprintf "output declared on nonexistent net %d" net)))
    (Analysis.invalid_outputs c);
  let cone = Rb_analysis.Engine.output_cone c in
  let live = Ternary.live_nets c in
  let consts = Ternary.constants c in
  (* dead gates *)
  Array.iteri
    (fun i _ ->
      if not cone.(base + i) then
        emit
          (D.warning ~rule:rule_dead (D.Gate i)
             (Printf.sprintf "gate drives net %d but feeds no output" (base + i))
             ~hint:"remove the gate or route it into an output cone"))
    (Netlist.gates c);
  (* key influence *)
  for k = 0 to n_keys - 1 do
    let net = n_inputs + k in
    if not cone.(net) then
      emit
        (D.error ~rule:rule_key_mute (D.Key_input k)
           "key input has no structural path to any output"
           ~hint:"an unconnected key bit adds no security; wire the key gate into \
                  live logic or drop the bit")
    else if not live.(net) then
      emit
        (D.error ~rule:rule_key_strip (D.Key_input k)
           "every path from this key input to an output is cut by constant folding"
           ~hint:"the lock is removable by constant propagation (e.g. k XOR k); \
                  re-insert the key gate on non-redundant logic")
  done;
  (* key gates with heavily skewed output probability *)
  List.iter
    (fun (gate, p) ->
      emit
        (D.warning ~rule:rule_key_skew (D.Gate gate)
           (Printf.sprintf
              "key gate output has estimated signal probability %.3f under random \
               keys (outside [%.2f, %.2f])"
              p skew_lo skew_hi)
           ~hint:"a near-constant key gate leaks its key bit to \
                  probability-profiling attacks; balance the gate (XOR-style \
                  insertion keeps p at 1/2)"))
    (Probability.skewed_key_gates ~lo:skew_lo ~hi:skew_hi c);
  (* outputs driven by keys or constants *)
  Array.iteri
    (fun pos net ->
      if net >= n_inputs && net < base then
        emit
          (D.error ~rule:rule_const_out (D.Output pos)
             (Printf.sprintf "output is key input %d itself — the key bit is observable"
                (net - n_inputs)))
      else if net >= 0 && net < Netlist.n_nets c then
        match consts.(net) with
        | Analysis.Known v ->
          emit
            (D.warning ~rule:rule_const_out (D.Output pos)
               (Printf.sprintf "output is statically constant %b" v))
        | Analysis.Unknown -> ())
    (Netlist.outputs c);
  List.rev !diags
