type severity = Error | Warning | Info

type location =
  | Net of int
  | Gate of int
  | Key_input of int
  | Output of int
  | Op of int
  | Fu of int
  | Whole_design

type t = {
  rule : string;
  severity : severity;
  location : location;
  message : string;
  hint : string option;
}

let make severity ?hint ~rule location message = { rule; severity; location; message; hint }
let error ?hint ~rule location message = make Error ?hint ~rule location message
let warning ?hint ~rule location message = make Warning ?hint ~rule location message
let info ?hint ~rule location message = make Info ?hint ~rule location message

let severity_label = function Error -> "error" | Warning -> "warning" | Info -> "info"

let location_label = function
  | Net n -> Printf.sprintf "net %d" n
  | Gate g -> Printf.sprintf "gate %d" g
  | Key_input k -> Printf.sprintf "key input %d" k
  | Output o -> Printf.sprintf "output %d" o
  | Op o -> Printf.sprintf "op %d" o
  | Fu f -> Printf.sprintf "FU %d" f
  | Whole_design -> "design"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let location_rank = function
  | Whole_design -> (0, 0)
  | Net n -> (1, n)
  | Gate g -> (2, g)
  | Key_input k -> (3, k)
  | Output o -> (4, o)
  | Op o -> (5, o)
  | Fu f -> (6, f)

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 ->
    (match String.compare a.rule b.rule with
     | 0 ->
       (match Stdlib.compare (location_rank a.location) (location_rank b.location) with
        | 0 -> String.compare a.message b.message
        | c -> c)
     | c -> c)
  | c -> c

let pp fmt t =
  Format.fprintf fmt "%s[%s] %s: %s" (severity_label t.severity) t.rule
    (location_label t.location) t.message;
  match t.hint with
  | Some h -> Format.fprintf fmt "@,    hint: %s" h
  | None -> ()
