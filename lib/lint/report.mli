(** A lint report: the diagnostics of one checked artifact.

    Reports are what rule sets return to callers and what the two
    reporters (text for terminals, JSON for tooling) render. A report
    is {e clean} when it carries no [Error]-severity diagnostic;
    warnings and infos never fail a build. *)

type t

val make : subject:string -> Diagnostic.t list -> t
(** Sorts the diagnostics into the stable {!Diagnostic.compare}
    order. [subject] names the artifact ("dct/mul", "locked adder"). *)

val subject : t -> string
val diagnostics : t -> Diagnostic.t list

val errors : t -> Diagnostic.t list
val error_count : t -> int
val warning_count : t -> int

val is_clean : t -> bool
(** No error-severity diagnostics. *)

val total_errors : t list -> int

val pp : Format.formatter -> t -> unit
(** Text reporter: a header line with the subject and counts, then one
    indented line per diagnostic (plus its fix hint when present). *)

val json : t -> Rb_util.Json.t
(** The report as a {!Rb_util.Json} value, for embedding in larger
    documents (e.g. the CLI's [--format json] outputs). *)

val to_json : t -> string
(** JSON reporter, one object:
    [{"subject": ..., "errors": n, "warnings": n, "diagnostics":
    [{"rule", "severity", "location", "message", "hint"?}, ...]}].
    Locations are objects [{"kind": "gate", "index": 3}] ([index]
    omitted for the whole-design location). *)

val json_of_reports : t list -> string
(** The reports as one JSON array, in order. *)
