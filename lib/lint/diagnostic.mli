(** The shared diagnostic record every lint rule emits.

    One diagnostic is one violation of one design rule at one location.
    Rule identifiers are short stable strings ([NET-CYCLE],
    [HLS-OVERSUB], ...) declared next to the rule implementations
    ({!Netlist_rules}, {!Hls_rules}, {!Locking_rules}); reporters and
    tests match on them, so they are part of the public contract and
    never change meaning. *)

type severity =
  | Error  (** the artifact violates a correctness or security invariant *)
  | Warning  (** suspicious but not invalidating (dead logic, wasted budget) *)
  | Info

(** Where in the artifact the rule fired. *)
type location =
  | Net of int  (** a netlist net *)
  | Gate of int  (** a netlist gate index *)
  | Key_input of int  (** a key input, by key index *)
  | Output of int  (** an output, by declaration position *)
  | Op of int  (** a DFG operation id *)
  | Fu of int  (** a functional unit id *)
  | Whole_design  (** no finer location applies *)

type t = {
  rule : string;  (** stable rule identifier *)
  severity : severity;
  location : location;
  message : string;  (** human-readable, one line *)
  hint : string option;  (** how to fix it, when the rule knows *)
}

val error : ?hint:string -> rule:string -> location -> string -> t
val warning : ?hint:string -> rule:string -> location -> string -> t
val info : ?hint:string -> rule:string -> location -> string -> t

val severity_label : severity -> string
(** ["error"], ["warning"] or ["info"] — shared by both reporters. *)

val location_label : location -> string
(** E.g. ["gate 3"], ["key input 0"], ["design"]. *)

val compare : t -> t -> int
(** Severity first (errors before warnings before infos), then rule id,
    then location, then message — the stable report order. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[NET-CYCLE] gate 3: message]. *)
