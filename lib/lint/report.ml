type t = { subject : string; diagnostics : Diagnostic.t list }

let make ~subject diagnostics =
  { subject; diagnostics = List.sort Diagnostic.compare diagnostics }

let subject t = t.subject
let diagnostics t = t.diagnostics

let errors t =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) t.diagnostics

let error_count t = List.length (errors t)

let warning_count t =
  List.length
    (List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Warning) t.diagnostics)

let is_clean t = error_count t = 0

let total_errors reports = List.fold_left (fun acc r -> acc + error_count r) 0 reports

let pp fmt t =
  let e = error_count t and w = warning_count t in
  if t.diagnostics = [] then Format.fprintf fmt "%s: clean" t.subject
  else begin
    Format.fprintf fmt "@[<v>%s: %d error%s, %d warning%s" t.subject e
      (if e = 1 then "" else "s")
      w
      (if w = 1 then "" else "s");
    List.iter (fun d -> Format.fprintf fmt "@,  @[<v>%a@]" Diagnostic.pp d) t.diagnostics;
    Format.fprintf fmt "@]"
  end

(* ------------------------------------------------------------- JSON *)

module Json = Rb_util.Json

let json_of_location loc =
  let obj kind index =
    Json.Obj [ ("kind", Json.String kind); ("index", Json.Int index) ]
  in
  match loc with
  | Diagnostic.Net n -> obj "net" n
  | Diagnostic.Gate g -> obj "gate" g
  | Diagnostic.Key_input k -> obj "key_input" k
  | Diagnostic.Output o -> obj "output" o
  | Diagnostic.Op o -> obj "op" o
  | Diagnostic.Fu f -> obj "fu" f
  | Diagnostic.Whole_design -> Json.Obj [ ("kind", Json.String "design") ]

let json_of_diagnostic d =
  Json.Obj
    ([
       ("rule", Json.String d.Diagnostic.rule);
       ("severity", Json.String (Diagnostic.severity_label d.Diagnostic.severity));
       ("location", json_of_location d.Diagnostic.location);
       ("message", Json.String d.Diagnostic.message);
     ]
    @ match d.Diagnostic.hint with
      | Some h -> [ ("hint", Json.String h) ]
      | None -> [])

let json t =
  Json.Obj
    [
      ("subject", Json.String t.subject);
      ("errors", Json.Int (error_count t));
      ("warnings", Json.Int (warning_count t));
      ("diagnostics", Json.List (List.map json_of_diagnostic t.diagnostics));
    ]

let to_json t = Json.to_string (json t)

let json_of_reports reports = Json.to_string (Json.List (List.map json reports))
