type t = { subject : string; diagnostics : Diagnostic.t list }

let make ~subject diagnostics =
  { subject; diagnostics = List.sort Diagnostic.compare diagnostics }

let subject t = t.subject
let diagnostics t = t.diagnostics

let errors t =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) t.diagnostics

let error_count t = List.length (errors t)

let warning_count t =
  List.length
    (List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Warning) t.diagnostics)

let is_clean t = error_count t = 0

let total_errors reports = List.fold_left (fun acc r -> acc + error_count r) 0 reports

let pp fmt t =
  let e = error_count t and w = warning_count t in
  if t.diagnostics = [] then Format.fprintf fmt "%s: clean" t.subject
  else begin
    Format.fprintf fmt "@[<v>%s: %d error%s, %d warning%s" t.subject e
      (if e = 1 then "" else "s")
      w
      (if w = 1 then "" else "s");
    List.iter (fun d -> Format.fprintf fmt "@,  @[<v>%a@]" Diagnostic.pp d) t.diagnostics;
    Format.fprintf fmt "@]"
  end

(* ------------------------------------------------------------- JSON *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_location loc =
  let obj kind index = Printf.sprintf {|{"kind":"%s","index":%d}|} kind index in
  match loc with
  | Diagnostic.Net n -> obj "net" n
  | Diagnostic.Gate g -> obj "gate" g
  | Diagnostic.Key_input k -> obj "key_input" k
  | Diagnostic.Output o -> obj "output" o
  | Diagnostic.Op o -> obj "op" o
  | Diagnostic.Fu f -> obj "fu" f
  | Diagnostic.Whole_design -> {|{"kind":"design"}|}

let json_of_diagnostic d =
  let hint =
    match d.Diagnostic.hint with
    | Some h -> Printf.sprintf {|,"hint":"%s"|} (escape h)
    | None -> ""
  in
  Printf.sprintf {|{"rule":"%s","severity":"%s","location":%s,"message":"%s"%s}|}
    (escape d.Diagnostic.rule)
    (Diagnostic.severity_label d.Diagnostic.severity)
    (json_of_location d.Diagnostic.location)
    (escape d.Diagnostic.message)
    hint

let to_json t =
  Printf.sprintf {|{"subject":"%s","errors":%d,"warnings":%d,"diagnostics":[%s]}|}
    (escape t.subject) (error_count t) (warning_count t)
    (String.concat "," (List.map json_of_diagnostic t.diagnostics))

let json_of_reports reports =
  Printf.sprintf "[%s]" (String.concat "," (List.map to_json reports))
