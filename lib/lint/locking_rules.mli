(** Locking-configuration design rules.

    A locking configuration can be structurally valid yet useless: lock
    too many minterms and the Eqn. 1 SAT-iteration bound collapses;
    lock the same minterm on two FUs and half the key budget buys
    nothing; lock minterms the workload never exercises and Eqn. 2
    counts zero. Rules:

    - {!rule_resilience} [LOCK-RESIL] (error): a locked FU's predicted
      SAT-attack iterations (Eqn. 1, {!Rb_locking.Resilience}) fall
      below the designer's target.
    - {!rule_overlap} [LOCK-OVERLAP] (warning): two locked FUs share a
      locked minterm — wasted key budget, since each FU corrupts
      independently.
    - {!rule_candidates} [LOCK-CAND] (error): a locked minterm is
      outside the supplied candidate list [C] — the co-design pipeline
      only reasons about candidates, so an off-list minterm means the
      config was not produced by (or drifted from) the search. *)

module Minterm = Rb_dfg.Minterm

val rule_resilience : string
val rule_overlap : string
val rule_candidates : string

val check_config :
  ?min_lambda:float ->
  ?key_bits:int ->
  ?candidates:Minterm.t array ->
  input_bits:int ->
  Rb_locking.Config.t ->
  Diagnostic.t list
(** [min_lambda] enables the Eqn. 1 bound check; [key_bits] overrides
    the scheme-derived per-FU key length (the methodology's fixed key
    budget); [candidates] enables the candidate-list check. Checks
    with an absent parameter are skipped. *)
