(** Rb_lint — a design-rule checker for netlists, bindings and locking
    configurations.

    Every security claim in this reproduction rests on structural
    invariants: key gates must sit on live logic or the SAT attack
    trivially wins, bindings must never double-book an FU in a cycle
    (paper Thm. 1), and locking configs must respect the Eqn. 1
    resilience bound. This library checks those invariants statically
    — before simulation or SAT attack — over three layers:
    {!Netlist_rules} (gate level), {!Hls_rules} (schedule/binding),
    {!Locking_rules} (configuration). Each rule set returns
    {!Diagnostic.t} lists; this module bundles them into {!Report.t}s
    for whole artifacts and provides the assertion hook the experiment
    drivers run on every generated design.

    The [bindlock lint] subcommand is the command-line front end; text
    and JSON rendering live in {!Report}. *)

exception Lint_error of Report.t
(** Raised by {!assert_clean}; carries the offending report. *)

val netlist : ?subject:string -> Rb_netlist.Netlist.t -> Report.t
(** Run the gate-level rules. [subject] defaults to ["netlist"]. *)

val locked : ?subject:string -> Rb_netlist.Lock.locked -> Report.t
(** {!netlist} on a locked circuit; the subject defaults to the
    construction's description string. *)

val design :
  ?min_lambda:float ->
  ?key_bits:int ->
  ?candidates:Rb_dfg.Minterm.t array ->
  ?config:Rb_locking.Config.t ->
  ?registers:int ->
  ?transfers:int ->
  subject:string ->
  Rb_sched.Schedule.t ->
  Rb_hls.Allocation.t ->
  fu_of_op:int array ->
  Report.t
(** Check one bound (and optionally locked) design: schedule
    precedence, binding validity, the locking rules when [config] is
    given (over the word-level FU input space,
    [input_bits = 2 * Word.width]), and declared-cost consistency when
    [registers]/[transfers] are given. Cost cross-checks are skipped
    when the binding itself is invalid (there is no meaningful cost to
    recompute). *)

val assert_clean : Report.t -> unit
(** Raise {!Lint_error} if the report has errors; the experiment
    drivers wrap every generated design in this. *)
