(** Gate-level design rules.

    Every locking construction is only as strong as the netlist that
    carries it: a key gate behind a combinational defect, outside every
    output cone, or removable by constant folding contributes zero
    corruption while still advertising key bits — exactly the malformed
    lock constructions (InterLock/SRCLock-style collapses) that fall to
    trivial attacks. Rules:

    - {!rule_cycle} [NET-CYCLE] (error): a gate operand is negative,
      out of range, or a forward reference — a combinational cycle in
      graph terms. Also fired for output declarations naming
      nonexistent nets.
    - {!rule_dead} [NET-DEAD] (warning): a gate outside every output
      cone — dead silicon that a synthesizer would strip.
    - {!rule_key_mute} [NET-KEY-MUTE] (error): a key input with no
      structural path to any output; its key bits are free to the
      attacker.
    - {!rule_key_strip} [NET-KEY-STRIP] (error): a key input whose
      every path to an output is cut by constant propagation
      (e.g. [k XOR k] feeding the logic) — the lock is trivially
      strippable.
    - {!rule_const_out} [NET-CONST-OUT]: an output driven directly by
      a key input (error — it leaks the key bit on an observable pin)
      or statically constant (warning).
    - {!rule_key_skew} [NET-KEY-SKEW] (warning): a key gate whose
      output signal probability under random keys falls outside
      [0.05, 0.95] — near-constant key gates leak their bits to
      ProbLock-style probability-profiling attacks.

    Structural well-formedness comes from {!Rb_netlist.Analysis}; the
    semantic facts (cones, constants, liveness, probabilities) come
    from the [Rb_analysis] dataflow engine, whose fixpoint iteration
    terminates on arbitrary {!Rb_netlist.Netlist.unchecked} circuits,
    cyclic ones included. *)

val rule_cycle : string
val rule_dead : string
val rule_key_mute : string
val rule_key_strip : string
val rule_const_out : string
val rule_key_skew : string

val check : Rb_netlist.Netlist.t -> Diagnostic.t list
(** Run every gate-level rule. *)
