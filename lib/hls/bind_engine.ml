module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Matcher = Rb_matching.Matcher

type weight_fn =
  kind:Dfg.op_kind -> cycle:int -> op:Dfg.op_id -> fu:int -> float

let bind ?matcher ?(on_bound = fun ~op:_ ~fu:_ -> ()) ~objective ~weight schedule
    allocation =
  let dfg = Schedule.dfg schedule in
  let fu_of_op = Array.make (Dfg.op_count dfg) (-1) in
  let bind_cycle kind cycle =
    let ops = Array.of_list (Schedule.ops_in_cycle schedule kind cycle) in
    if Array.length ops > 0 then begin
      let fus = Array.of_list (Allocation.fu_ids allocation kind) in
      if Array.length ops > Array.length fus then
        invalid_arg
          (Printf.sprintf "Bind_engine: cycle %d needs %d %s FUs, %d allocated" cycle
             (Array.length ops) (Dfg.kind_label kind) (Array.length fus));
      let matrix =
        Array.map
          (fun op -> Array.map (fun fu -> weight ~kind ~cycle ~op ~fu) fus)
          ops
      in
      (* Registry solve + canonical tie-break: whichever matcher is
         selected, the binding that comes back is byte-identical. *)
      let assignment =
        match objective with
        | `Maximize -> Matcher.max_weight_dense ?matcher matrix
        | `Minimize -> Matcher.min_cost_dense ?matcher matrix
      in
      Array.iteri
        (fun row col ->
          let op = ops.(row) and fu = fus.(col) in
          fu_of_op.(op) <- fu;
          on_bound ~op ~fu)
        assignment
    end
  in
  for cycle = 0 to Schedule.n_cycles schedule - 1 do
    bind_cycle Dfg.Add cycle;
    bind_cycle Dfg.Mul cycle
  done;
  Binding.make schedule allocation ~fu_of_op
