(** The uniform binder interface and its name-keyed registry.

    All four binding algorithms (area-aware, power-aware,
    obfuscation-aware, binding-obfuscation co-design) implement one
    module type {!S} over one {!input} record, so the CLI, the bench
    harness and the experiment drivers select binders by name instead
    of repeating ad-hoc match arms.

    This module registers the two baseline binders that live in
    [Rb_hls] ("area", "power"); the security-aware binders live in
    [Rb_core] and are registered by [Rb_core.Binders.ensure_registered]
    — call that once at startup before resolving their names. *)

(** Everything any binder may consume. Baseline binders ignore the
    locking-related fields. *)
type input = {
  schedule : Rb_sched.Schedule.t;
  allocation : Allocation.t;
  profile : Profile.t;  (** workload profile (power-aware binding) *)
  k : Rb_sim.Kmatrix.t;  (** K matrix (security-aware binding) *)
  config : Rb_locking.Config.t;  (** locking configuration to bind under *)
  candidates : Rb_dfg.Minterm.t array;
      (** candidate locked-input list C (co-design) *)
}

(** A binding plus the locking configuration it was built for. Binders
    with a fixed a-priori lock echo [input.config]; co-design returns
    the configuration it chose. *)
type output = { binding : Binding.t; config : Rb_locking.Config.t }

module type S = sig
  val name : string
  (** Registry key ("area", "power", "obf", "codesign"). *)

  val description : string
  (** One line for [--help] and listings. *)

  val bind : input -> output
end

val register : (module S) -> unit
(** Add a binder to the registry. Raises [Invalid_argument] on a
    duplicate name. The stored module is wrapped with
    [Rb_util.Metrics] instrumentation: each [bind] through the
    registry bumps the deterministic counter
    ["binder/<name>_binds"] and records wall-clock in the timer
    ["binder/<name>_bind"]. *)

val find : string -> (module S) option

val require : string -> (module S)
(** As {!find}, but raises [Invalid_argument] naming the known binders
    when the name is unknown. *)

val names : unit -> string list
(** Registered names, sorted. *)

val bind : string -> input -> output
(** [bind name input] is [require name] applied to [input]. *)
