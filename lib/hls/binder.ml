type input = {
  schedule : Rb_sched.Schedule.t;
  allocation : Allocation.t;
  profile : Profile.t;
  k : Rb_sim.Kmatrix.t;
  config : Rb_locking.Config.t;
  candidates : Rb_dfg.Minterm.t array;
}

type output = { binding : Binding.t; config : Rb_locking.Config.t }

module type S = sig
  val name : string
  val description : string
  val bind : input -> output
end

(* Registration happens once at startup (module initializers and
   explicit ensure_registered calls); lookups after that are
   read-only, so a plain hash table under a mutex suffices. *)
let registry : (string, (module S)) Hashtbl.t = Hashtbl.create 8
let registry_mutex = Mutex.create ()

module Metrics = Rb_util.Metrics

(* Every binder resolved through the registry reports under the
   "binder" scope: a deterministic invocation counter and a segregated
   wall-clock timer per registered name. Wrapping at registration time
   means callers of [require]/[bind] need no further plumbing. *)
let instrument (module B : S) : (module S) =
  let calls = Metrics.counter ~scope:"binder" (B.name ^ "_binds") in
  let wall = Metrics.timer ~scope:"binder" (B.name ^ "_bind") in
  (module struct
    let name = B.name
    let description = B.description

    let bind input =
      Metrics.incr calls;
      Metrics.time wall (fun () -> B.bind input)
  end)

let register (module B : S) =
  Mutex.lock registry_mutex;
  let duplicate = Hashtbl.mem registry B.name in
  if not duplicate then Hashtbl.replace registry B.name (instrument (module B : S));
  Mutex.unlock registry_mutex;
  if duplicate then
    invalid_arg (Printf.sprintf "Binder.register: duplicate binder %S" B.name)

let find name =
  Mutex.lock registry_mutex;
  let r = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mutex;
  r

let names () =
  Mutex.lock registry_mutex;
  let l = Hashtbl.fold (fun name _ acc -> name :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort String.compare l

let require name =
  match find name with
  | Some b -> b
  | None ->
    invalid_arg
      (Printf.sprintf "Binder.require: unknown binder %S (known: %s)" name
         (String.concat ", " (names ())))

let bind name input =
  let (module B : S) = require name in
  B.bind input

module Area = struct
  let name = "area"
  let description = "area-aware baseline: minimize registers/transfers [20]"
  let bind input =
    { binding = Area_binding.bind input.schedule input.allocation;
      config = input.config }
end

module Power = struct
  let name = "power"
  let description = "power-aware baseline: minimize input switching [19]"
  let bind input =
    { binding = Power_binding.bind input.schedule input.allocation ~profile:input.profile;
      config = input.config }
end

let () =
  register (module Area);
  register (module Power)
