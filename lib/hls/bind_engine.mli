(** The per-cycle bipartite-matching scaffold shared by every binder.

    All binding algorithms here have the same skeleton (Sec. IV-B):
    for each operation kind and each clock cycle [t], build the
    complete weighted bipartite graph between the cycle's concurrent
    operations [N_t] and the kind's allocated FUs, solve the assignment
    problem optimally, and take the matching as the cycle's binding.
    Only the edge-weight function differs between the obfuscation-,
    area- and power-aware algorithms.

    Cycles are visited in ascending order and, within a cycle, kinds in
    declaration order ([Add] then [Mul]); history-dependent weight
    functions (area, power) may therefore close over mutable state that
    tracks earlier assignments — the engine reports each cycle's
    matching through [on_bound] before weighing the next cycle. *)

type weight_fn =
  kind:Rb_dfg.Dfg.op_kind ->
  cycle:int ->
  op:Rb_dfg.Dfg.op_id ->
  fu:int ->
  float
(** Edge weight between an operation and a (kind-compatible, global-id)
    FU. *)

val bind :
  ?matcher:string ->
  ?on_bound:(op:Rb_dfg.Dfg.op_id -> fu:int -> unit) ->
  objective:[ `Maximize | `Minimize ] ->
  weight:weight_fn ->
  Rb_sched.Schedule.t ->
  Allocation.t ->
  Binding.t
(** Run the scaffold. Each cycle's assignment is solved by the
    {!Rb_matching.Matcher} registry ([?matcher] overrides the
    process-wide default) and canonicalized, so the resulting binding
    is byte-identical whichever algorithm solves it. [on_bound] fires
    once per operation, immediately after its cycle's matching is
    fixed and before the next cycle is weighed. Raises
    [Invalid_argument] if the allocation cannot cover some cycle's
    concurrency. *)
