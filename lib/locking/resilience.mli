(** The corruption/resilience trade-off — paper Eqn. 1.

    For a locked module with key length [k], [c] functionally correct
    keys and a fraction [epsilon] of corrupted input minterms, the
    expected number of SAT-attack iterations is

    {v
      lambda = ceil( log( (N - eN) / (eN (N-1)) ) / log( (N - eN) / (N-1) ) )
      where N = 2^k - c  and  e = epsilon
    v}

    (Zuzak et al., "Trace logic locking", TCAD 2020, as quoted in the
    paper). Because [lambda] falls as [epsilon] rises, a SAT-resilient
    configuration can only lock a handful of minterms per FU — the
    budget the binding algorithms then spend as effectively as
    possible. *)

val lambda : key_bits:int -> correct_keys:int -> epsilon:float -> float
(** Expected SAT iterations of paper Eqn. 1. Returns [infinity] when
    [epsilon] is so small that no DIP can prune wrong keys faster than
    one per iteration would ever finish (numerically: non-positive
    logs), and [1.0] when every wrong key dies on the first iteration.
    Raises [Invalid_argument] for [epsilon] outside (0, 1), fewer than
    1 correct key, or a key space smaller than the correct-key count. *)

val lambda_minterms : key_bits:int -> correct_keys:int -> input_bits:int -> minterms:int -> float
(** {!lambda} with [epsilon = minterms / 2^input_bits] — the form used
    everywhere in this library, where a locking configuration is
    described by its locked-minterm count. *)

val max_minterms_for : key_bits:int -> correct_keys:int -> input_bits:int -> min_lambda:float -> int
(** Largest locked-minterm count whose predicted [lambda] still meets
    [min_lambda]; 0 when even a single minterm is too corrupting. The
    resilience budget used by the Sec. V-C methodology. *)

val is_resilient : key_bits:int -> input_bits:int -> minterms:int -> min_lambda:float -> bool
(** Convenience: does a configuration (with [c = 1]) meet the bound? *)

(** {1 Static resilience}

    Eqn. 1 bounds the {e oracle-guided} attacker. A locked netlist can
    meet the bound and still fall to an attacker who never touches an
    oracle — constant propagation and probability profiling read key
    bits straight out of the structure. {!static} quantifies that
    exposure with the [Rb_analysis] oracle-less battery. *)

type static = {
  key_bits : int;
  inferable : int;
      (** key bits the constant-propagation attack recovers *)
  skewed : int;  (** key gates with output probability outside [0.05, 0.95] *)
  resilient_fraction : float;
      (** [1 - inferable/key_bits]; [1.0] for keyless circuits *)
}

val static : Rb_netlist.Netlist.t -> static
(** Run the oracle-less battery against a locked netlist. *)
