let lambda ~key_bits ~correct_keys ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Resilience.lambda: epsilon";
  if correct_keys < 1 then invalid_arg "Resilience.lambda: correct_keys";
  if key_bits < 1 || key_bits > 1024 then invalid_arg "Resilience.lambda: key_bits";
  let key_space = Float.pow 2.0 (float_of_int key_bits) in
  let n = key_space -. float_of_int correct_keys in
  if n < 1.0 then invalid_arg "Resilience.lambda: no wrong keys";
  if n <= 1.0 then 1.0
  else begin
    (* N - eN = N(1 - e): expected wrong keys *surviving* one iteration. *)
    let surviving = n *. (1.0 -. epsilon) in
    let numerator = log (surviving /. (epsilon *. n *. (n -. 1.0))) in
    let denominator = log (surviving /. (n -. 1.0)) in
    if denominator >= 0.0 then
      (* Each iteration fails to shrink the wrong-key set in
         expectation: the attack is not expected to converge. *)
      infinity
    else if numerator >= 0.0 then
      (* One expected iteration already empties the set. *)
      1.0
    else Float.of_int (int_of_float (ceil (numerator /. denominator)))
  end

let lambda_minterms ~key_bits ~correct_keys ~input_bits ~minterms =
  if input_bits < 1 || input_bits > 1024 then
    invalid_arg "Resilience.lambda_minterms: input_bits";
  if minterms < 1 then invalid_arg "Resilience.lambda_minterms: minterms";
  let space = Float.pow 2.0 (float_of_int input_bits) in
  let epsilon = float_of_int minterms /. space in
  if epsilon >= 1.0 then 1.0
  else lambda ~key_bits ~correct_keys ~epsilon

let max_minterms_for ~key_bits ~correct_keys ~input_bits ~min_lambda =
  if input_bits > 30 then invalid_arg "Resilience.max_minterms_for: input_bits";
  let space = 1 lsl input_bits in
  (* lambda is monotone decreasing in minterms: binary search. *)
  let meets m =
    m >= 1 && lambda_minterms ~key_bits ~correct_keys ~input_bits ~minterms:m >= min_lambda
  in
  if not (meets 1) then 0
  else begin
    let lo = ref 1 and hi = ref (space - 1) in
    if meets !hi then !hi
    else begin
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if meets mid then lo := mid else hi := mid
      done;
      !lo
    end
  end

let is_resilient ~key_bits ~input_bits ~minterms ~min_lambda =
  lambda_minterms ~key_bits ~correct_keys:1 ~input_bits ~minterms >= min_lambda

type static = {
  key_bits : int;
  inferable : int;
  skewed : int;
  resilient_fraction : float;
}

let static c =
  let outcome = Rb_analysis.Attacks.const_prop c in
  let inferable = List.length outcome.Rb_analysis.Attacks.inferred in
  let skewed = List.length (Rb_analysis.Probability.skewed_key_gates c) in
  let key_bits = Rb_netlist.Netlist.n_keys c in
  {
    key_bits;
    inferable;
    skewed;
    resilient_fraction =
      (if key_bits = 0 then 1.0
       else 1.0 -. (float_of_int inferable /. float_of_int key_bits));
  }
