module Netlist = Rb_netlist.Netlist
module N = Netlist

type const = Rb_netlist.Analysis.const = Known of bool | Unknown

(* Internal lattice: Bot (never reached) < F, T < Top (free). Using a
   genuine bottom keeps the transfer function monotone on cyclic
   netlists, so the engine's join-based sweep converges to the least
   fixpoint instead of oscillating. *)
type v = Bot | F | T | Top

let to_const = function F -> Known false | T -> Known true | Bot | Top -> Unknown
let of_const = function Known false -> F | Known true -> T | Unknown -> Top
let of_bool b = if b then T else F

module Domain = struct
  type nonrec v = v

  let name = "ternary"
  let equal (a : v) b = a = b

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | x, y when x = y -> x
    | _ -> Top

  let bogus = Top

  let not_ = function F -> T | T -> F | (Bot | Top) as x -> x

  let and_ a b =
    match (a, b) with
    | F, _ | _, F -> F
    | Bot, _ | _, Bot -> Bot
    | T, T -> T
    | _ -> Top

  let or_ a b =
    match (a, b) with
    | T, _ | _, T -> T
    | Bot, _ | _, Bot -> Bot
    | F, F -> F
    | _ -> Top

  let xor_ a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Top, _ | _, Top -> Top
    | x, y -> if x = y then F else T

  let transfer ~driven:_ gate ~read =
    match gate with
    | N.Const k -> of_bool k
    | N.Buf a -> read a
    | N.Not a -> not_ (read a)
    | N.And (a, b) -> and_ (read a) (read b)
    | N.Nand (a, b) -> not_ (and_ (read a) (read b))
    | N.Or (a, b) -> or_ (read a) (read b)
    | N.Nor (a, b) -> not_ (or_ (read a) (read b))
    | N.Xor (a, b) -> if a = b then F else xor_ (read a) (read b)
    | N.Xnor (a, b) -> if a = b then T else not_ (xor_ (read a) (read b))
    | N.Mux (s, a, b) -> (
        match read s with
        | F -> read a
        | T -> read b
        | Bot -> Bot
        | Top -> (
            match (read a, read b) with
            | Bot, _ | _, Bot -> Bot
            | x, y when x = y && (x = F || x = T) -> x
            | _ -> Top))
end

module E = Engine.Make (Domain)

let check_key c = function
  | None -> ()
  | Some key ->
      if Array.length key <> N.n_keys c then
        invalid_arg "Ternary.run: key assignment width mismatch"

let run ?limit ?key c =
  check_key c key;
  let base = N.n_inputs c + N.n_keys c in
  let init net =
    if net >= base then Bot
    else if net < N.n_inputs c then Top
    else
      match key with
      | None -> Top
      | Some key -> of_const key.(net - N.n_inputs c)
  in
  E.run ?limit ~init c

let constants ?key c =
  Array.map to_const (run ?key c).Engine.values

let live_nets ?key c =
  let base = N.n_inputs c + N.n_keys c in
  let gates = N.gates c in
  let total = N.n_nets c in
  let consts = constants ?key c in
  let live = Array.make total false in
  let rec visit n =
    if n >= 0 && n < total && (not live.(n)) && consts.(n) = Unknown then begin
      live.(n) <- true;
      if n >= base then begin
        let follow m = if m >= 0 && m < total then visit m in
        match gates.(n - base) with
        | N.Mux (s, a, b) -> (
            (* A known select cuts the unselected branch out of the
               circuit; known data operands are refused by [visit]. *)
            match
              if s >= 0 && s < total then consts.(s) else Unknown
            with
            | Known false -> follow a
            | Known true -> follow b
            | Unknown ->
                follow s;
                follow a;
                follow b)
        | g -> List.iter follow (N.gate_fanin g)
      end
    end
  in
  Array.iter visit (N.outputs c);
  live
