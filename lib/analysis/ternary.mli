(** Ternary constant propagation, parameterized by partial key
    assignments.

    The domain refines the classic [Known]/[Unknown] split with an
    internal bottom element so that fixpoint iteration over cyclic
    [unchecked] netlists is monotone: a net that has never been reached
    stays bottom, a net forced to a boolean is [Known], and a net that
    may take either value is [Unknown] (top). Externally, only
    {!const} is exposed — bottom collapses into [Unknown], preserving
    the historic [Rb_netlist.Analysis.constants] contract.

    Propagation applies the standard identities: domination
    ([And] with a false operand, [Or] with a true one), same-net
    identities ([Xor (a, a)] is false, [Xnor (a, a)] is true),
    known-select [Mux] narrowing and equal-known-branch [Mux]
    collapse. Seeding a key bit with a concrete value — the
    [?key] partial assignment — is what turns this analysis into the
    SCOPE/SWEEP-style oracle-less attack primitive: propagate under
    [k_i = 0] and [k_i = 1] and compare what the outputs can still
    do. *)

type const = Rb_netlist.Analysis.const = Known of bool | Unknown

type v
(** The internal four-valued lattice element. *)

val to_const : v -> const
(** Bottom and top both map to [Unknown]. *)

module Domain : Engine.DOMAIN with type v = v

val run :
  ?limit:Rb_util.Limits.t ->
  ?key:const array ->
  Rb_netlist.Netlist.t ->
  v Engine.outcome
(** Propagate constants. [key], when given, must have length [n_keys];
    [Known] entries pin the corresponding key net, [Unknown] entries
    leave it free. Primary inputs are always free. *)

val constants : ?key:const array -> Rb_netlist.Netlist.t -> const array
(** Per-net constant classification — [run] projected through
    {!to_const}. Drop-in replacement for the retired
    [Rb_netlist.Analysis.constants]. *)

val live_nets : ?key:const array -> Rb_netlist.Netlist.t -> bool array
(** Per net: can the net influence an output value? Walks backwards
    from the outputs, refusing to enter nets that {!constants} proved
    constant, and following only the selected branch of a [Mux] whose
    select is known. A constant output is itself live (it drives a
    value) but nothing feeding it is. *)
