module N = Rb_netlist.Netlist
module Limits = Rb_util.Limits
module Json = Rb_util.Json

type key_observability = {
  key_bit : int;
  outputs_reached : int;
  min_depth : int option;
  cone_gates : int;
}

type t = {
  subject : string;
  n_inputs : int;
  n_keys : int;
  n_gates : int;
  n_outputs : int;
  inferable : Attacks.inference list;
  skewed : (int * float) list;
  dead_gates : int;
  cycles : int;
  cyclic_nets : int;
  observability : key_observability list;
  gates_removed : int;
  static_resilience : float;
  stopped : Limits.reason option;
}

let analyze ?limit ~subject c =
  let cone = Engine.output_cone c in
  let base = N.n_inputs c + N.n_keys c in
  let dead_gates = ref 0 in
  for i = 0 to N.n_gates c - 1 do
    if not cone.(base + i) then incr dead_gates
  done;
  let cyc = Cycles.find c in
  let cyclic_nets =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 cyc.Cycles.cyclic
  in
  let skewed = Probability.skewed_key_gates c in
  let observability =
    List.map
      (fun (s : Keydep.summary) ->
        {
          key_bit = s.Keydep.key_bit;
          outputs_reached = List.length s.Keydep.outputs_reached;
          min_depth = s.Keydep.min_output_depth;
          cone_gates = s.Keydep.cone_gates;
        })
      (Keydep.summarize c)
  in
  (* Both registered attacks run through the registry so their
     instrumented counters land in every metrics snapshot; const-prop's
     inferences are authoritative (removal re-derives the same set). *)
  let cp = Attacks.run ?limit "const-prop" c in
  let removal = Attacks.run ?limit "removal" c in
  let inferable = cp.Attacks.inferred in
  let n_keys = N.n_keys c in
  let static_resilience =
    if n_keys = 0 then 1.0
    else 1.0 -. (float_of_int (List.length inferable) /. float_of_int n_keys)
  in
  {
    subject;
    n_inputs = N.n_inputs c;
    n_keys;
    n_gates = N.n_gates c;
    n_outputs = Array.length (N.outputs c);
    inferable;
    skewed;
    dead_gates = !dead_gates;
    cycles = Cycles.count cyc;
    cyclic_nets;
    observability;
    gates_removed = removal.Attacks.gates_removed;
    static_resilience;
    stopped =
      (match cp.Attacks.stopped with
      | Some _ as s -> s
      | None -> removal.Attacks.stopped);
  }

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "rb-analyze/1");
      ("subject", Json.String r.subject);
      ("n_inputs", Json.Int r.n_inputs);
      ("n_keys", Json.Int r.n_keys);
      ("n_gates", Json.Int r.n_gates);
      ("n_outputs", Json.Int r.n_outputs);
      ( "inferable",
        Json.List
          (List.map
             (fun (i : Attacks.inference) ->
               Json.Obj
                 [
                   ("bit", Json.Int i.Attacks.bit);
                   ("value", Json.Bool i.Attacks.value);
                   ("via", Json.String i.Attacks.via);
                 ])
             r.inferable) );
      ( "skewed_key_gates",
        Json.List
          (List.map
             (fun (gate, p) ->
               Json.Obj
                 [ ("gate", Json.Int gate); ("probability", Json.float_or_string p) ])
             r.skewed) );
      ("dead_gates", Json.Int r.dead_gates);
      ("cycles", Json.Int r.cycles);
      ("cyclic_nets", Json.Int r.cyclic_nets);
      ( "observability",
        Json.List
          (List.map
             (fun o ->
               Json.Obj
                 [
                   ("key_bit", Json.Int o.key_bit);
                   ("outputs_reached", Json.Int o.outputs_reached);
                   ( "min_depth",
                     match o.min_depth with
                     | Some d -> Json.Int d
                     | None -> Json.Null );
                   ("cone_gates", Json.Int o.cone_gates);
                 ])
             r.observability) );
      ("gates_removed", Json.Int r.gates_removed);
      ("static_resilience", Json.float_or_string r.static_resilience);
      ( "stopped",
        match r.stopped with
        | Some reason -> Json.String (Limits.reason_label reason)
        | None -> Json.Null );
    ]

let pp fmt r =
  let open Format in
  fprintf fmt "@[<v>%s: %d inputs, %d keys, %d gates, %d outputs@," r.subject
    r.n_inputs r.n_keys r.n_gates r.n_outputs;
  fprintf fmt "  inferable key bits : %d" (List.length r.inferable);
  if r.inferable <> [] then begin
    fprintf fmt " (";
    List.iteri
      (fun i (inf : Attacks.inference) ->
        if i > 0 then fprintf fmt ", ";
        fprintf fmt "k%d=%d via %s" inf.Attacks.bit
          (if inf.Attacks.value then 1 else 0)
          inf.Attacks.via)
      r.inferable;
    fprintf fmt ")"
  end;
  fprintf fmt "@,";
  fprintf fmt "  skewed key gates   : %d" (List.length r.skewed);
  if r.skewed <> [] then begin
    fprintf fmt " (";
    List.iteri
      (fun i (g, p) ->
        if i > 0 then fprintf fmt ", ";
        fprintf fmt "g%d p=%.3f" g p)
      r.skewed;
    fprintf fmt ")"
  end;
  fprintf fmt "@,";
  fprintf fmt "  dead gates         : %d@," r.dead_gates;
  fprintf fmt "  combinational SCCs : %d (%d nets)@," r.cycles r.cyclic_nets;
  fprintf fmt "  removable gates    : %d@," r.gates_removed;
  let mute =
    List.length (List.filter (fun o -> o.min_depth = None) r.observability)
  in
  let depths = List.filter_map (fun o -> o.min_depth) r.observability in
  (match depths with
  | [] -> fprintf fmt "  key observability  : %d mute bits@," mute
  | _ ->
      fprintf fmt "  key observability  : depth %d-%d, %d mute@,"
        (List.fold_left min max_int depths)
        (List.fold_left max 0 depths)
        mute);
  fprintf fmt "  static resilience  : %.3f" r.static_resilience;
  (match r.stopped with
  | Some reason -> fprintf fmt "@,  (partial: stopped on %s)" (Limits.reason_label reason)
  | None -> ());
  fprintf fmt "@]"
