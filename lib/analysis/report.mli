(** Per-design static-vulnerability reports — the payload behind
    [bindlock analyze].

    One {!analyze} call runs the whole battery: constant propagation,
    signal probabilities, key-dependence cones, cycle detection and
    the registered oracle-less attacks, folded into a single record
    that renders as text or {!Rb_util.Json} (schema
    ["rb-analyze/1"]). *)

type key_observability = {
  key_bit : int;
  outputs_reached : int;
  min_depth : int option;  (** [None] for a mute key bit *)
  cone_gates : int;
}

type t = {
  subject : string;
  n_inputs : int;
  n_keys : int;
  n_gates : int;
  n_outputs : int;
  inferable : Attacks.inference list;
      (** key bits the constant-propagation attack recovers *)
  skewed : (int * float) list;
      (** key gates with output probability outside [0.05, 0.95] *)
  dead_gates : int;  (** gates outside every output cone *)
  cycles : int;  (** non-trivial SCCs in the net graph *)
  cyclic_nets : int;
  observability : key_observability list;
  gates_removed : int;  (** by the removal attack *)
  static_resilience : float;
      (** [1 - inferable/n_keys]; [1.0] for keyless designs *)
  stopped : Rb_util.Limits.reason option;
      (** analyses degraded by a limit; counts are partial *)
}

val analyze : ?limit:Rb_util.Limits.t -> subject:string -> Rb_netlist.Netlist.t -> t

val to_json : t -> Rb_util.Json.t
val pp : Format.formatter -> t -> unit
