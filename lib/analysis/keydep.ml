module N = Rb_netlist.Netlist

type v = (int * int) list

(* Union of sorted assoc lists, keeping the minimum depth per key. *)
let rec union a b =
  match (a, b) with
  | [], x | x, [] -> x
  | (ka, da) :: ta, (kb, db) :: tb ->
      if ka < kb then (ka, da) :: union ta b
      else if kb < ka then (kb, db) :: union a tb
      else (ka, min da db) :: union ta tb

module Domain = struct
  type nonrec v = v

  let name = "keydep"
  let equal (a : v) b = a = b
  let join = union
  let bogus = []

  let transfer ~driven:_ gate ~read =
    let deps =
      List.fold_left (fun acc n -> union acc (read n)) [] (N.gate_fanin gate)
    in
    List.map (fun (k, d) -> (k, d + 1)) deps
end

module E = Engine.Make (Domain)

let run ?limit c =
  let n_inputs = N.n_inputs c in
  let n_keys = N.n_keys c in
  let init net =
    if net >= n_inputs && net < n_inputs + n_keys then
      [ (net - n_inputs, 0) ]
    else []
  in
  E.run ?limit ~init c

type summary = {
  key_bit : int;
  outputs_reached : int list;
  min_output_depth : int option;
  cone_gates : int;
}

let summarize c =
  let values = (run c).Engine.values in
  let base = N.n_inputs c + N.n_keys c in
  let outputs = N.outputs c in
  let n_nets = N.n_nets c in
  List.init (N.n_keys c) (fun k ->
      let outputs_reached = ref [] in
      let min_depth = ref None in
      Array.iteri
        (fun pos net ->
          if net >= 0 && net < n_nets then
            match List.assoc_opt k values.(net) with
            | Some d ->
                outputs_reached := pos :: !outputs_reached;
                min_depth :=
                  Some
                    (match !min_depth with
                    | None -> d
                    | Some d' -> min d d')
            | None -> ())
        outputs;
      let cone_gates = ref 0 in
      for net = base to n_nets - 1 do
        if List.mem_assoc k values.(net) then incr cone_gates
      done;
      {
        key_bit = k;
        outputs_reached = List.rev !outputs_reached;
        min_output_depth = !min_depth;
        cone_gates = !cone_gates;
      })
