(** Oracle-less structural attacks over locked netlists.

    Unlike the oracle-guided SAT attack in [Rb_sat], these attacks see
    {e only} the locked netlist — no working chip to query. They model
    the SCOPE/SWEEP family: propagate constants under trial key-bit
    values, keep the values the structure betrays, then strip the
    logic those values collapse. Attacks register in a process-wide
    registry (mirroring the binder registry) so the CLI and bench can
    enumerate them by name; each registered attack is instrumented
    with deterministic [Metrics] counters under the ["attack"] scope.

    Every attack degrades gracefully: a [limit] or the
    ["analysis/fixpoint"] fault site stops the underlying fixpoint
    early, and the outcome carries the {!Rb_util.Limits.reason} with
    {e no} inferences claimed — a budget-stopped attack must never
    report half-propagated values as recovered key bits. *)

type inference = {
  bit : int;  (** key bit index *)
  value : bool;  (** inferred value *)
  via : string;
      (** which rule produced it: ["mute"], ["strip"] or
          ["pass-through"] *)
}

type outcome = {
  attack : string;
  inferred : inference list;  (** ascending key bit; empty if stopped *)
  gates_removed : int;  (** removal attack only; 0 otherwise *)
  keys_stripped : int;
  simplified : Rb_netlist.Netlist.t option;
      (** the rebuilt netlist, when the attack rewrites one *)
  stopped : Rb_util.Limits.reason option;
}

(** The registered-attack interface. *)
module type S = sig
  val name : string
  val description : string
  val run : ?limit:Rb_util.Limits.t -> Rb_netlist.Netlist.t -> outcome
end

val register : (module S) -> unit
(** Raises [Invalid_argument] on a duplicate name. *)

val names : unit -> string list
(** Registered attack names, sorted. *)

val require : string -> (module S)
(** Raises [Invalid_argument] with the known names on a miss. *)

val run :
  ?limit:Rb_util.Limits.t -> string -> Rb_netlist.Netlist.t -> outcome
(** [require] then run. *)

val ensure_registered : unit -> unit
(** Force registration of the built-in attacks (["const-prop"],
    ["removal"]). Idempotent; callers that enumerate {!names} before
    ever naming an attack must call this first. *)

(** {1 Built-in attacks, also callable directly} *)

val const_prop : ?limit:Rb_util.Limits.t -> Rb_netlist.Netlist.t -> outcome
(** Constant-propagation key inference. Three rules, in order:
    {ul
    {- {b mute}: a key bit outside every output cone cannot affect the
       function; infer [false] (any value works — the canonical guess
       is deterministic).}
    {- {b strip}: a key bit inside an output cone but not live after
       constant folding is cancelled by the circuit ([k XOR k]-style
       defects); infer [false].}
    {- {b pass-through}: a key bit consumed only by XOR/XNOR gates
       whose other operand is an internal gate net is a textbook
       random-XOR lock: the key value making each gate transparent
       ([false] for XOR, [true] for XNOR) is the correct one, provided
       all consumers agree. Keyed XORs of {e primary inputs} (the
       Anti-SAT / point-function comparator shape) are excluded —
       there the XOR is a comparator input, not an inline repair, and
       the rule would guess blindly.}}
    A final validation pass re-propagates under the full inferred
    assignment and drops the pass-through inferences if any output
    becomes a constant that was not already constant under the free
    key — the structural signature of a wrong collapse. *)

val removal : ?limit:Rb_util.Limits.t -> Rb_netlist.Netlist.t -> outcome
(** Structural removal: take {!const_prop}'s inferred assignment, fold
    constants under it, and rebuild the netlist with every collapsed
    gate eliminated (constants folded, pass-through gates bypassed,
    dead logic dropped). The rebuilt circuit keeps the original
    input/key widths — stripped key inputs simply drive nothing — so
    it remains comparable under [Netlist.eval]. No-op (beyond
    inference) on structurally ill-formed netlists. *)

val strip :
  Rb_netlist.Netlist.t ->
  key:(int * bool) list ->
  Rb_netlist.Netlist.t * int
(** The rewriting core of {!removal}, usable with any partial key
    assignment [(bit, value)]: returns the rebuilt netlist and the
    number of gates removed. *)
