(** Signal-probability estimation — the ProbLock statistic.

    Estimates, for every net, the probability that it evaluates true
    when primary inputs and key inputs are drawn uniformly at random.
    The estimate uses the standard independence rules
    ([P(a AND b) = P(a)P(b)] and friends), which are {e exact} whenever
    the circuit is a tree below the net (no reconvergent fan-out); on
    reconvergent circuits they are the usual first-order
    approximation. Same-net special cases that independence would get
    wrong are folded ([XOR (a, a)] has probability 0 even though
    independence would say [2p(1-p)]).

    On cyclic [unchecked] netlists, nets on an SCC are updated with a
    damping factor so the Gauss–Seidel sweep relaxes towards a stable
    estimate instead of oscillating; {!Engine.outcome.converged}
    reports honestly whether it got there within the pass budget.

    The locking-relevant consumer is {!skewed_key_gates}: a key gate
    whose output probability is far from 1/2 leaks its key bit to a
    probability-matching attacker, exactly the signal ProbLock
    minimizes when choosing where to lock. *)

val run :
  ?limit:Rb_util.Limits.t ->
  ?max_passes:int ->
  ?input_prob:float ->
  Rb_netlist.Netlist.t ->
  float Engine.outcome
(** Per-net probability estimate. [input_prob] (default [0.5]) seeds
    every primary input and key input. [max_passes] defaults to 64 —
    enough for damped relaxation to settle on realistic cyclic
    circuits while staying a deterministic budget. *)

val estimate : ?input_prob:float -> Rb_netlist.Netlist.t -> float array
(** [run] projected to its values. *)

val skewed_key_gates :
  ?lo:float -> ?hi:float -> Rb_netlist.Netlist.t ->
  (int * float) list
(** Key gates whose output-net probability falls outside [[lo, hi]]
    (defaults [0.05] and [0.95]): [(gate_index, probability)] in
    ascending gate order. A {e key gate} is a gate reading at least
    one key net directly. *)
