(** The generic forward-dataflow fixpoint engine over gate-level
    netlists.

    Every structural analysis in this library — ternary constant
    propagation, signal-probability estimation, key-dependence cones —
    is one instantiation of the same loop: give every net a value from
    an analysis-specific domain, sweep the gates in index order
    recomputing each driven net from its operands, and repeat until
    nothing changes. On netlists from {!Rb_netlist.Netlist.Builder}
    (acyclic by construction, gates in topological order) the loop
    converges in two passes: one to compute, one to confirm. On
    {!Rb_netlist.Netlist.unchecked} circuits, forward references make
    the gate graph cyclic and the sweep becomes a genuine fixpoint
    iteration — which is exactly what cycle-tolerant analyses
    (SRCLock-style cyclic locking, Sec. zoo of the ROADMAP) need.

    Termination is {e never} left to the domain: every run carries a
    pass budget (defaulting to one pass per gate plus slack, enough for
    any finite-height lattice to converge on any graph), and an
    optional {!Rb_util.Limits.t} for cooperative cancellation. A run
    that stops early reports [converged = false] and the tripped
    {!Rb_util.Limits.reason} instead of spinning — the same graceful
    degradation contract as the budgeted SAT solver.

    When {!Rb_util.Metrics} collection is enabled, runs count under the
    ["analysis"] scope ([fixpoint_runs], [fixpoint_passes],
    [transfers]); the deterministic counters feed the bench section and
    the CI perf gate. The fault site ["analysis/fixpoint"] (keyed by
    the domain name) lets the robustness harness force a budget-style
    stop without touching the domain code. *)

module type DOMAIN = sig
  type v

  val name : string
  (** Stable identifier: metric labels, fault-injection keys. *)

  val equal : v -> v -> bool
  (** Convergence test between an old and a recomputed value. *)

  val join : v -> v -> v
  (** [join old fresh]: the value stored after recomputation. Lattice
      analyses join towards top so iteration is monotone; numeric
      analyses may simply return [fresh] (Gauss–Seidel) and rely on
      the pass budget plus [equal] for convergence. *)

  val bogus : v
  (** Value read for an operand net outside the circuit (negative or
      past the last net) — the engine never follows ill-formed
      references, mirroring {!Rb_netlist.Analysis.structural_errors}
      semantics. Use the domain's "no information" element. *)

  val transfer :
    driven:Rb_netlist.Netlist.net ->
    Rb_netlist.Netlist.gate ->
    read:(Rb_netlist.Netlist.net -> v) ->
    v
  (** Recompute the value of the net [driven] from its gate and the
      current values of its operands. [read] is total: ill-formed
      operands yield {!bogus}, forward references yield the operand's
      current (possibly not-yet-computed) value. [driven] lets
      domains special-case their own net (e.g. damped self-updates on
      cyclic nets). *)
end

type 'v outcome = {
  values : 'v array;  (** per net, length {!Rb_netlist.Netlist.n_nets} *)
  passes : int;  (** full gate sweeps executed *)
  converged : bool;
      (** a sweep completed with no value change; [false] means the
          pass budget or a limit stopped the iteration first *)
  stopped : Rb_util.Limits.reason option;
      (** why iteration stopped early, when it did; budget exhaustion
          reports [Conflicts] (the deterministic budget class) *)
}

module Make (D : DOMAIN) : sig
  val run :
    ?limit:Rb_util.Limits.t ->
    ?max_passes:int ->
    init:(Rb_netlist.Netlist.net -> D.v) ->
    Rb_netlist.Netlist.t ->
    D.v outcome
  (** Iterate to fixpoint. [init] seeds every net: analyses give
      inputs and keys their boundary values and gate nets the domain's
      bottom. [max_passes] defaults to [n_gates + 2]; it is a
      deterministic budget, so an exhausted run stops at the same
      sweep on every machine. A tripped budget or limit is counted via
      {!Rb_util.Limits.note}. *)
end

val output_cone : Rb_netlist.Netlist.t -> bool array
(** Per net: is the net an output or in the transitive structural
    fan-in of one? Shared by dead-logic reporting, key observability
    and the removal attack's dead-code elimination. Safe on arbitrary
    {!Rb_netlist.Netlist.unchecked} circuits: ill-formed operands are
    skipped, and cycles terminate because visited nets are never
    re-entered. *)
