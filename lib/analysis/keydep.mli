(** Key-dependence cones: which key bits reach which nets, and through
    how many gates.

    The domain element for a net is the set of key bits whose value can
    structurally influence the net, each tagged with the {e minimum}
    gate depth from the key input. Joins take set union with minimum
    depth, so the fixpoint is exact reachability even through cycles.

    Per-key-bit summaries answer the questions a locking report asks:
    is the key bit observable at any output at all (a mute bit is free
    for an attacker to guess), how shallow is its shortest path to an
    output (shallow key logic is easier to isolate and strip), and how
    large is its dependent cone (a one-gate cone is removable). *)

type v = (int * int) list
(** Sorted association list: key bit index to minimum depth in gates.
    The empty list means key-independent. *)

module Domain : Engine.DOMAIN with type v = v

val run :
  ?limit:Rb_util.Limits.t -> Rb_netlist.Netlist.t -> v Engine.outcome

type summary = {
  key_bit : int;
  outputs_reached : int list;  (** output positions, ascending *)
  min_output_depth : int option;
      (** gates on the shortest key-to-output path; [None] when the
          bit reaches no output (a mute key bit) *)
  cone_gates : int;  (** gates whose output net depends on the bit *)
}

val summarize : Rb_netlist.Netlist.t -> summary list
(** One {!summary} per key bit, ascending. *)
