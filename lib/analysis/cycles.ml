module N = Rb_netlist.Netlist

type t = {
  sccs : N.net list list;
  cyclic : bool array;
}

(* Iterative Tarjan over the net graph (edges operand -> driven net,
   restricted to in-range operands). Iterative because adversarial
   unchecked netlists can chain thousands of gates and the recursion
   would track the longest path. *)
let find c =
  let n_nets = N.n_nets c in
  let gates = N.gates c in
  let base = n_nets - Array.length gates in
  let succs net =
    if net < base then []
    else
      List.filter
        (fun m -> m >= 0 && m < n_nets)
        (N.gate_fanin gates.(net - base))
  in
  let index = Array.make n_nets (-1) in
  let lowlink = Array.make n_nets 0 in
  let on_stack = Array.make n_nets false in
  let stack = ref [] in
  let next_index = ref 0 in
  let cyclic = Array.make n_nets false in
  let sccs = ref [] in
  let self_loop = Array.make n_nets false in
  for net = base to n_nets - 1 do
    if List.mem net (succs net) then self_loop.(net) <- true
  done;
  (* Explicit DFS frames: the net and its remaining successors. *)
  let visit root =
    if index.(root) < 0 then begin
      let frames = ref [ (root, ref (succs root)) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (net, rest) :: tail -> (
            match !rest with
            | m :: more ->
                rest := more;
                if index.(m) < 0 then begin
                  index.(m) <- !next_index;
                  lowlink.(m) <- !next_index;
                  incr next_index;
                  stack := m :: !stack;
                  on_stack.(m) <- true;
                  frames := (m, ref (succs m)) :: !frames
                end
                else if on_stack.(m) then
                  lowlink.(net) <- min lowlink.(net) index.(m)
            | [] ->
                frames := tail;
                (match tail with
                | (parent, _) :: _ ->
                    lowlink.(parent) <- min lowlink.(parent) lowlink.(net)
                | [] -> ());
                if lowlink.(net) = index.(net) then begin
                  let rec pop acc =
                    match !stack with
                    | [] -> acc
                    | m :: rest ->
                        stack := rest;
                        on_stack.(m) <- false;
                        if m = net then m :: acc else pop (m :: acc)
                  in
                  let comp = pop [] in
                  match comp with
                  | [ single ] when not self_loop.(single) -> ()
                  | _ ->
                      List.iter (fun m -> cyclic.(m) <- true) comp;
                      sccs := List.sort compare comp :: !sccs
                end)
      done
    end
  in
  for net = base to n_nets - 1 do
    visit net
  done;
  { sccs = List.rev !sccs; cyclic }

let count t = List.length t.sccs
