module Netlist = Rb_netlist.Netlist
module Limits = Rb_util.Limits
module Metrics = Rb_util.Metrics
module Faults = Rb_util.Faults

let m_runs = Metrics.counter ~scope:"analysis" "fixpoint_runs"
let m_passes = Metrics.counter ~scope:"analysis" "fixpoint_passes"
let m_transfers = Metrics.counter ~scope:"analysis" "transfers"

module type DOMAIN = sig
  type v

  val name : string
  val equal : v -> v -> bool
  val join : v -> v -> v
  val bogus : v

  val transfer :
    driven:Netlist.net -> Netlist.gate -> read:(Netlist.net -> v) -> v
end

type 'v outcome = {
  values : 'v array;
  passes : int;
  converged : bool;
  stopped : Limits.reason option;
}

module Make (D : DOMAIN) = struct
  let run ?(limit = Limits.none) ?max_passes ~init netlist =
    let n_nets = Netlist.n_nets netlist in
    let gates = Netlist.gates netlist in
    let n_gates = Array.length gates in
    let base = n_nets - n_gates in
    let max_passes =
      match max_passes with Some m -> max m 0 | None -> n_gates + 2
    in
    Metrics.incr m_runs;
    let values = Array.init n_nets init in
    let read net =
      if net < 0 || net >= n_nets then D.bogus else values.(net)
    in
    let passes = ref 0 in
    let converged = ref (n_gates = 0) in
    let stopped = ref None in
    (* The fault site models budget exhaustion: a firing injection stops
       the iteration exactly as a spent pass budget would, under the
       deterministic [Conflicts] reason class. *)
    (try Faults.inject ~site:"analysis/fixpoint" ~key:D.name
     with Faults.Injected _ ->
       stopped := Some Limits.Conflicts;
       converged := false);
    while (not !converged) && !stopped = None do
      if !passes >= max_passes then stopped := Some Limits.Conflicts
      else begin
        (match Limits.interrupted limit with
        | Some r -> stopped := Some r
        | None ->
            incr passes;
            Metrics.incr m_passes;
            let changed = ref false in
            for i = 0 to n_gates - 1 do
              let driven = base + i in
              let old = values.(driven) in
              let fresh = D.transfer ~driven gates.(i) ~read in
              let next = D.join old fresh in
              if not (D.equal old next) then begin
                values.(driven) <- next;
                changed := true
              end
            done;
            Metrics.add m_transfers n_gates;
            if not !changed then converged := true)
      end
    done;
    (match !stopped with Some r -> Limits.note r | None -> ());
    { values; passes = !passes; converged = !converged; stopped = !stopped }
end

let output_cone netlist =
  let n_nets = Netlist.n_nets netlist in
  let gates = Netlist.gates netlist in
  let base = n_nets - Array.length gates in
  let in_cone = Array.make n_nets false in
  let rec visit net =
    if net >= 0 && net < n_nets && not in_cone.(net) then begin
      in_cone.(net) <- true;
      if net >= base then
        match gates.(net - base) with
        | And (a, b) | Or (a, b) | Xor (a, b) | Nand (a, b) | Nor (a, b)
        | Xnor (a, b) ->
            visit a;
            visit b
        | Not a | Buf a -> visit a
        | Mux (s, a, b) ->
            visit s;
            visit a;
            visit b
        | Const _ -> ()
    end
  in
  Array.iter visit (Netlist.outputs netlist);
  in_cone
