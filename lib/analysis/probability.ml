module N = Rb_netlist.Netlist

let eps = 1e-9

(* Damping for nets on combinational cycles: plain Gauss-Seidel on a
   cycle of inverters flips between 0 and 1 forever; relaxing each
   cyclic net only part-way towards its recomputed value turns the
   oscillation into a contraction. *)
let damp = 0.5

let make_domain cyclic =
  (module struct
    type v = float

    let name = "probability"
    let equal a b = Float.abs (a -. b) < eps
    let join _old fresh = fresh
    let bogus = 0.5

    let raw gate read =
      match gate with
      | N.Const k -> if k then 1.0 else 0.0
      | N.Buf a -> read a
      | N.Not a -> 1.0 -. read a
      | N.And (a, b) -> if a = b then read a else read a *. read b
      | N.Nand (a, b) ->
          if a = b then 1.0 -. read a else 1.0 -. (read a *. read b)
      | N.Or (a, b) ->
          if a = b then read a
          else
            let pa = read a and pb = read b in
            pa +. pb -. (pa *. pb)
      | N.Nor (a, b) ->
          if a = b then 1.0 -. read a
          else
            let pa = read a and pb = read b in
            1.0 -. (pa +. pb -. (pa *. pb))
      | N.Xor (a, b) ->
          if a = b then 0.0
          else
            let pa = read a and pb = read b in
            pa +. pb -. (2.0 *. pa *. pb)
      | N.Xnor (a, b) ->
          if a = b then 1.0
          else
            let pa = read a and pb = read b in
            1.0 -. (pa +. pb -. (2.0 *. pa *. pb))
      | N.Mux (s, a, b) ->
          let ps = read s in
          if a = b then read a
          else ((1.0 -. ps) *. read a) +. (ps *. read b)

    let transfer ~driven gate ~read =
      let fresh = raw gate read in
      if cyclic.(driven) then
        let old = read driven in
        old +. (damp *. (fresh -. old))
      else fresh
  end : Engine.DOMAIN
    with type v = float)

let run ?limit ?(max_passes = 64) ?(input_prob = 0.5) c =
  let cyclic = (Cycles.find c).Cycles.cyclic in
  let (module D) = make_domain cyclic in
  let module E = Engine.Make (D) in
  let base = N.n_inputs c + N.n_keys c in
  E.run ?limit ~max_passes ~init:(fun net -> if net < base then input_prob else 0.5) c

let estimate ?input_prob c = (run ?input_prob c).Engine.values

let is_key_gate c gate =
  let n_inputs = N.n_inputs c in
  let key_net n = n >= n_inputs && n < n_inputs + N.n_keys c in
  List.exists key_net (N.gate_fanin gate)

let skewed_key_gates ?(lo = 0.05) ?(hi = 0.95) c =
  let probs = estimate c in
  let base = N.n_inputs c + N.n_keys c in
  let out = ref [] in
  Array.iteri
    (fun i g ->
      if is_key_gate c g then begin
        let p = probs.(base + i) in
        if p < lo || p > hi then out := (i, p) :: !out
      end)
    (N.gates c);
  List.rev !out
