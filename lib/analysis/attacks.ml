module N = Rb_netlist.Netlist
module Analysis = Rb_netlist.Analysis
module Limits = Rb_util.Limits
module Metrics = Rb_util.Metrics

type inference = { bit : int; value : bool; via : string }

type outcome = {
  attack : string;
  inferred : inference list;
  gates_removed : int;
  keys_stripped : int;
  simplified : N.t option;
  stopped : Limits.reason option;
}

module type S = sig
  val name : string
  val description : string
  val run : ?limit:Limits.t -> N.t -> outcome
end

(* Registration happens once at startup; lookups after that are
   read-only, so a plain hash table under a mutex suffices (the binder
   registry sets the precedent). *)
let registry : (string, (module S)) Hashtbl.t = Hashtbl.create 8
let registry_mutex = Mutex.create ()

(* Every attack resolved through the registry reports under the
   "attack" scope: deterministic run/inference counters plus a
   segregated wall-clock timer per registered name. *)
let instrument (module A : S) : (module S) =
  let runs = Metrics.counter ~scope:"attack" (A.name ^ "_runs") in
  let inferred = Metrics.counter ~scope:"attack" (A.name ^ "_inferred") in
  let removed = Metrics.counter ~scope:"attack" (A.name ^ "_gates_removed") in
  let budget = Metrics.counter ~scope:"attack" (A.name ^ "_stopped") in
  let wall = Metrics.timer ~scope:"attack" (A.name ^ "_run") in
  (module struct
    let name = A.name
    let description = A.description

    let run ?limit c =
      Metrics.incr runs;
      let out = Metrics.time wall (fun () -> A.run ?limit c) in
      Metrics.add inferred (List.length out.inferred);
      Metrics.add removed out.gates_removed;
      if out.stopped <> None then Metrics.incr budget;
      out
  end)

let register (module A : S) =
  Mutex.lock registry_mutex;
  let duplicate = Hashtbl.mem registry A.name in
  if not duplicate then Hashtbl.replace registry A.name (instrument (module A : S));
  Mutex.unlock registry_mutex;
  if duplicate then
    invalid_arg (Printf.sprintf "Attacks.register: duplicate attack %S" A.name)

let find name =
  Mutex.lock registry_mutex;
  let r = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mutex;
  r

let names () =
  Mutex.lock registry_mutex;
  let l = Hashtbl.fold (fun name _ acc -> name :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort String.compare l

(* ---------- constant-propagation key inference ---------- *)

let stopped_outcome name r =
  {
    attack = name;
    inferred = [];
    gates_removed = 0;
    keys_stripped = 0;
    simplified = None;
    stopped = Some r;
  }

let key_assignment c inferences =
  let key = Array.make (N.n_keys c) Analysis.Unknown in
  List.iter (fun { bit; value; _ } -> key.(bit) <- Analysis.Known value) inferences;
  key

(* The pass-through rule: a key bit consumed exclusively by XOR/XNOR
   gates pairing it with an internal gate net is an inline repair gate
   (the random-XOR/XNOR locking shape); the transparent polarity is
   the correct key. XORs against primary inputs or other key bits are
   comparator inputs (Anti-SAT, point functions) and prove nothing. *)
let pass_through_candidate c k =
  let k_net = N.key_net c k in
  let base = N.n_inputs c + N.n_keys c in
  let internal n = n >= base in
  let candidates =
    Array.to_list (N.gates c)
    |> List.filter_map (fun g ->
           match g with
           | N.Xor (a, b) when a = k_net || b = k_net ->
               let other = if a = k_net then b else a in
               Some (if internal other then Some false else None)
           | N.Xnor (a, b) when a = k_net || b = k_net ->
               let other = if a = k_net then b else a in
               Some (if internal other then Some true else None)
           | g when List.mem k_net (N.gate_fanin g) -> Some None
           | _ -> None)
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      if List.for_all (fun c -> c = first) rest then first else None

let const_prop_name = "const-prop"

let const_prop ?limit c =
  let free = Ternary.run ?limit c in
  match free.Engine.stopped with
  | Some r -> stopped_outcome const_prop_name r
  | None ->
      let cone = Engine.output_cone c in
      let live = Ternary.live_nets c in
      let n_keys = N.n_keys c in
      let inferences = ref [] in
      let claimed = Array.make (max n_keys 1) false in
      let claim bit value via =
        claimed.(bit) <- true;
        inferences := { bit; value; via } :: !inferences
      in
      for k = 0 to n_keys - 1 do
        let k_net = N.key_net c k in
        if not cone.(k_net) then claim k false "mute"
        else if not live.(k_net) then claim k false "strip"
      done;
      for k = 0 to n_keys - 1 do
        if not claimed.(k) then
          match pass_through_candidate c k with
          | Some value -> claim k value "pass-through"
          | None -> ()
      done;
      let inferences = List.rev !inferences in
      (* Validation: re-propagate under the inferred assignment; if an
         output turns constant that was free under the unconstrained
         key, a pass-through guess collapsed real logic — drop the
         pass-through class and keep only the sound rules. *)
      let pass_throughs =
        List.filter (fun i -> i.via = "pass-through") inferences
      in
      let validated =
        if pass_throughs = [] then Ok inferences
        else
          let pinned = Ternary.run ?limit ~key:(key_assignment c inferences) c in
          match pinned.Engine.stopped with
          | Some r -> Error r
          | None ->
              let n_nets = N.n_nets c in
              let became_const =
                Array.exists
                  (fun net ->
                    net >= 0 && net < n_nets
                    && Ternary.to_const pinned.Engine.values.(net) <> Analysis.Unknown
                    && Ternary.to_const free.Engine.values.(net) = Analysis.Unknown)
                  (N.outputs c)
              in
              if became_const then
                Ok (List.filter (fun i -> i.via <> "pass-through") inferences)
              else Ok inferences
      in
      (match validated with
      | Error r -> stopped_outcome const_prop_name r
      | Ok inferred ->
          {
            attack = const_prop_name;
            inferred;
            gates_removed = 0;
            keys_stripped = List.length inferred;
            simplified = None;
            stopped = None;
          })

(* ---------- structural removal ---------- *)

let strip c ~key =
  if Analysis.structural_errors c <> [] || Analysis.invalid_outputs c <> []
  then (c, 0)
  else begin
    let n_keys = N.n_keys c in
    let assignment = Array.make n_keys Analysis.Unknown in
    List.iter
      (fun (bit, value) ->
        if bit >= 0 && bit < n_keys then
          assignment.(bit) <- Analysis.Known value)
      key;
    let consts = Ternary.constants ~key:assignment c in
    let n_inputs = N.n_inputs c in
    let base = n_inputs + n_keys in
    let gates = N.gates c in
    let b = N.Builder.create ~n_inputs ~n_keys in
    let memo = Hashtbl.create 64 in
    let const_memo = Hashtbl.create 2 in
    let const_net v =
      match Hashtbl.find_opt const_memo v with
      | Some n -> n
      | None ->
          let n = N.Builder.const b v in
          Hashtbl.add const_memo v n;
          n
    in
    (* Translate an original net into the rebuilt circuit, emitting
       only the gates the outputs still need. The original is
       well-formed (checked above), so operands always precede their
       gate and the recursion emits in topological order. *)
    let rec tr net =
      match Hashtbl.find_opt memo net with
      | Some n -> n
      | None ->
          let fresh =
            match consts.(net) with
            | Analysis.Known v -> const_net v
            | Analysis.Unknown ->
                if net < n_inputs then N.Builder.input b net
                else if net < base then N.Builder.key b (net - n_inputs)
                else translate_gate gates.(net - base)
          in
          Hashtbl.replace memo net fresh;
          fresh
    and translate_gate g =
      let known n = consts.(n) in
      let emit g = N.Builder.gate b g in
      match g with
      | N.Buf a -> tr a
      | N.Const v -> const_net v
      | N.Not a -> (
          match known a with
          | Analysis.Known v -> const_net (not v)
          | Analysis.Unknown -> emit (N.Not (tr a)))
      | N.And (x, y) -> binop (fun a b -> N.And (a, b)) ~unit_:true ~inv:false x y
      | N.Or (x, y) -> binop (fun a b -> N.Or (a, b)) ~unit_:false ~inv:false x y
      | N.Nand (x, y) -> binop (fun a b -> N.Nand (a, b)) ~unit_:true ~inv:true x y
      | N.Nor (x, y) -> binop (fun a b -> N.Nor (a, b)) ~unit_:false ~inv:true x y
      | N.Xor (x, y) -> xorop ~odd:true x y
      | N.Xnor (x, y) -> xorop ~odd:false x y
      | N.Mux (s, x, y) -> (
          match known s with
          | Analysis.Known false -> tr x
          | Analysis.Known true -> tr y
          | Analysis.Unknown ->
              if x = y then tr x
              else emit (N.Mux (tr s, tr x, tr y)))
    (* AND/OR-family gate with one operand known: the unit element
       makes the gate transparent (possibly inverted), the absorbing
       element would have made the whole net Known — already handled
       by [tr]. *)
    and binop mk ~unit_ ~inv x y =
      let emit g = N.Builder.gate b g in
      let through n = if inv then emit (N.Not (tr n)) else tr n in
      match (consts.(x), consts.(y)) with
      | Analysis.Known v, _ when v = unit_ -> through y
      | _, Analysis.Known v when v = unit_ -> through x
      | _ -> emit (mk (tr x) (tr y))
    and xorop ~odd x y =
      let emit g = N.Builder.gate b g in
      let through ~flipped n =
        if flipped = odd then emit (N.Not (tr n)) else tr n
      in
      if x = y then const_net (not odd)
      else
        match (consts.(x), consts.(y)) with
        | Analysis.Known v, _ -> through ~flipped:v y
        | _, Analysis.Known v -> through ~flipped:v x
        | _ ->
            if odd then emit (N.Xor (tr x, tr y))
            else emit (N.Xnor (tr x, tr y))
    in
    Array.iter (fun out -> N.Builder.output b (tr out)) (N.outputs c);
    let rebuilt = N.Builder.finish b in
    (rebuilt, N.n_gates c - N.n_gates rebuilt)
  end

let removal_name = "removal"

let removal ?limit c =
  let inference = const_prop ?limit c in
  match inference.stopped with
  | Some r -> stopped_outcome removal_name r
  | None ->
      let key =
        List.map (fun { bit; value; _ } -> (bit, value)) inference.inferred
      in
      let simplified, gates_removed = strip c ~key in
      {
        attack = removal_name;
        inferred = inference.inferred;
        gates_removed;
        keys_stripped = List.length inference.inferred;
        simplified = Some simplified;
        stopped = None;
      }

(* ---------- registry wiring ---------- *)

module Const_prop = struct
  let name = const_prop_name
  let description = "constant-propagation key inference (SCOPE/SWEEP-style)"
  let run = const_prop
end

module Removal = struct
  let name = removal_name
  let description = "strip key gates collapsed by inferred assignments"
  let run = removal
end

let registered =
  lazy
    (register (module Const_prop : S);
     register (module Removal : S))

let ensure_registered () = Lazy.force registered

let require name =
  ensure_registered ();
  match find name with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "Attacks.require: unknown attack %S (known: %s)" name
           (String.concat ", " (names ())))

let run ?limit name c =
  let (module A : S) = require name in
  A.run ?limit c

let names () =
  ensure_registered ();
  names ()
