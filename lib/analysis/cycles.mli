(** Combinational-cycle detection with SCC extraction.

    Builder-produced netlists are acyclic by construction, but
    [Netlist.unchecked] circuits may contain forward references —
    which, viewed as a net graph, are combinational cycles. Cyclic
    locking schemes (SRCLock and successors) create them on purpose;
    this module is the groundwork for reasoning about them: Tarjan's
    algorithm over the gate-net graph, reporting every non-trivial
    strongly connected component (two or more nets, or a self-loop).

    Ill-formed operands (negative or out of range) are skipped — they
    are {!Rb_netlist.Analysis.structural_errors}' business, and
    skipping them keeps this total on arbitrary inputs. *)

type t = {
  sccs : Rb_netlist.Netlist.net list list;
      (** non-trivial SCCs, each a sorted list of member nets;
          components listed in a deterministic (reverse topological
          discovery) order *)
  cyclic : bool array;
      (** per net (length [n_nets]): does the net lie on some
          combinational cycle? *)
}

val find : Rb_netlist.Netlist.t -> t

val count : t -> int
(** Number of non-trivial SCCs — the "cycle count" a vulnerability
    report quotes. *)
