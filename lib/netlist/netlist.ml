type net = int

type gate =
  | And of net * net
  | Or of net * net
  | Xor of net * net
  | Nand of net * net
  | Nor of net * net
  | Xnor of net * net
  | Not of net
  | Buf of net
  | Mux of net * net * net
  | Const of bool

type t = {
  n_inputs : int;
  n_keys : int;
  gates : gate array;
  outputs : net array;
}

let n_inputs c = c.n_inputs
let n_keys c = c.n_keys
let n_gates c = Array.length c.gates
let n_nets c = c.n_inputs + c.n_keys + Array.length c.gates
let gates c = c.gates
let outputs c = c.outputs

let input_net c i =
  if i < 0 || i >= c.n_inputs then invalid_arg "Netlist.input_net";
  i

let key_net c i =
  if i < 0 || i >= c.n_keys then invalid_arg "Netlist.key_net";
  c.n_inputs + i

let gate_fanin = function
  | And (a, b) | Or (a, b) | Xor (a, b) | Nand (a, b) | Nor (a, b) | Xnor (a, b) ->
    [ a; b ]
  | Not a | Buf a -> [ a ]
  | Mux (s, a, b) -> [ s; a; b ]
  | Const _ -> []

let eval c ~inputs ~keys =
  if Array.length inputs <> c.n_inputs then invalid_arg "Netlist.eval: input width";
  if Array.length keys <> c.n_keys then invalid_arg "Netlist.eval: key width";
  let values = Array.make (n_nets c) false in
  Array.blit inputs 0 values 0 c.n_inputs;
  Array.blit keys 0 values c.n_inputs c.n_keys;
  let base = c.n_inputs + c.n_keys in
  Array.iteri
    (fun i g ->
      let v =
        match g with
        | And (a, b) -> values.(a) && values.(b)
        | Or (a, b) -> values.(a) || values.(b)
        | Xor (a, b) -> values.(a) <> values.(b)
        | Nand (a, b) -> not (values.(a) && values.(b))
        | Nor (a, b) -> not (values.(a) || values.(b))
        | Xnor (a, b) -> values.(a) = values.(b)
        | Not a -> not values.(a)
        | Buf a -> values.(a)
        | Mux (s, a, b) -> if values.(s) then values.(b) else values.(a)
        | Const v -> v
      in
      values.(base + i) <- v)
    c.gates;
  Array.map (fun o -> values.(o)) c.outputs

let eval_words c ~inputs ~keys =
  if c.n_inputs > 62 || c.n_keys > 62 || Array.length c.outputs > 62 then
    invalid_arg "Netlist.eval_words: more than 62 inputs, keys or outputs";
  let unpack n width = Array.init width (fun i -> (n lsr i) land 1 = 1) in
  let out = eval c ~inputs:(unpack inputs c.n_inputs) ~keys:(unpack keys c.n_keys) in
  Array.to_list out
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( lor ) 0

let unchecked ~n_inputs ~n_keys ~gates ~outputs =
  if n_inputs < 0 || n_keys < 0 then invalid_arg "Netlist.unchecked";
  { n_inputs; n_keys; gates = Array.copy gates; outputs = Array.copy outputs }

let fanin_cone_size c root =
  let base = c.n_inputs + c.n_keys in
  let seen = Hashtbl.create 64 in
  let rec visit n =
    if n >= base && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      List.iter visit (gate_fanin c.gates.(n - base))
    end
  in
  visit root;
  Hashtbl.length seen

let pp_stats fmt c =
  Format.fprintf fmt "%d inputs, %d keys, %d gates, %d outputs" c.n_inputs c.n_keys
    (Array.length c.gates) (Array.length c.outputs)

module Builder = struct
  type b = {
    n_inputs : int;
    n_keys : int;
    mutable rev_gates : gate list;
    mutable n_gates : int;
    mutable rev_outputs : net list;
  }

  type t = b

  let create ~n_inputs ~n_keys =
    if n_inputs < 0 || n_keys < 0 then invalid_arg "Netlist.Builder.create";
    { n_inputs; n_keys; rev_gates = []; n_gates = 0; rev_outputs = [] }

  let input b i =
    if i < 0 || i >= b.n_inputs then invalid_arg "Netlist.Builder.input";
    i

  let key b i =
    if i < 0 || i >= b.n_keys then invalid_arg "Netlist.Builder.key";
    b.n_inputs + i

  let next_net b = b.n_inputs + b.n_keys + b.n_gates

  let check_net b n =
    if n < 0 || n >= next_net b then invalid_arg "Netlist.Builder: undefined net"

  let gate b g =
    List.iter (check_net b)
      (match g with
       | And (x, y) | Or (x, y) | Xor (x, y) | Nand (x, y) | Nor (x, y) | Xnor (x, y) ->
         [ x; y ]
       | Not x | Buf x -> [ x ]
       | Mux (s, x, y) -> [ s; x; y ]
       | Const _ -> []);
    let n = next_net b in
    b.rev_gates <- g :: b.rev_gates;
    b.n_gates <- b.n_gates + 1;
    n

  let not_ b a = gate b (Not a)
  let and_ b a c = gate b (And (a, c))
  let or_ b a c = gate b (Or (a, c))
  let xor_ b a c = gate b (Xor (a, c))
  let xnor_ b a c = gate b (Xnor (a, c))
  let mux b ~sel ~a ~b:b_net = gate b (Mux (sel, a, b_net))
  let const b v = gate b (Const v)

  let rec reduce combine b = function
    | [] -> invalid_arg "Netlist.Builder: empty reduction"
    | [ n ] -> n
    | nets ->
      let rec pair = function
        | [] -> []
        | [ n ] -> [ n ]
        | a :: c :: rest -> combine b a c :: pair rest
      in
      reduce combine b (pair nets)

  let and_reduce b nets = reduce and_ b nets
  let or_reduce b nets = reduce or_ b nets

  let output b n =
    check_net b n;
    b.rev_outputs <- n :: b.rev_outputs

  let finish b =
    {
      n_inputs = b.n_inputs;
      n_keys = b.n_keys;
      gates = Array.of_list (List.rev b.rev_gates);
      outputs = Array.of_list (List.rev b.rev_outputs);
    }
end
