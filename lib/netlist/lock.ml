module B = Netlist.Builder
module Rng = Rb_util.Rng

type locked = {
  circuit : Netlist.t;
  correct_key : bool array;
  description : string;
}

let require_unlocked c name =
  if Netlist.n_keys c <> 0 then invalid_arg (name ^ ": circuit already has key inputs")

(* Rebuild [c] inside a fresh builder with [n_keys] key inputs,
   applying [rewrite] after each original gate: [rewrite i new_net]
   returns the net that consumers of original gate [i] should read. *)
let rebuild c ~n_keys ~rewrite =
  let b = B.create ~n_inputs:(Netlist.n_inputs c) ~n_keys in
  let base = Netlist.n_inputs c + Netlist.n_keys c in
  let map = Array.make (Netlist.n_nets c) (-1) in
  for i = 0 to Netlist.n_inputs c - 1 do
    map.(i) <- B.input b i
  done;
  let tr n =
    let m = map.(n) in
    assert (m >= 0);
    m
  in
  Array.iteri
    (fun i g ->
      let g' =
        match (g : Netlist.gate) with
        | And (x, y) -> Netlist.And (tr x, tr y)
        | Or (x, y) -> Netlist.Or (tr x, tr y)
        | Xor (x, y) -> Netlist.Xor (tr x, tr y)
        | Nand (x, y) -> Netlist.Nand (tr x, tr y)
        | Nor (x, y) -> Netlist.Nor (tr x, tr y)
        | Xnor (x, y) -> Netlist.Xnor (tr x, tr y)
        | Not x -> Netlist.Not (tr x)
        | Buf x -> Netlist.Buf (tr x)
        | Mux (s, x, y) -> Netlist.Mux (tr s, tr x, tr y)
        | Const v -> Netlist.Const v
      in
      let net = B.gate b g' in
      map.(base + i) <- rewrite b i net)
    (Netlist.gates c);
  (b, fun n -> tr n)

(* Gate indices in the transitive fan-in of some output: key gates on
   dead logic would never corrupt anything (and would defeat the SAT
   attack's termination guarantee vacuously). *)
let live_gates c =
  let base = Netlist.n_inputs c + Netlist.n_keys c in
  let gates = Netlist.gates c in
  let live = Array.make (Array.length gates) false in
  let rec visit net =
    if net >= base && not live.(net - base) then begin
      live.(net - base) <- true;
      List.iter visit (Netlist.gate_fanin gates.(net - base))
    end
  in
  Array.iter visit (Netlist.outputs c);
  live

let xor_random ~rng ~key_bits c =
  require_unlocked c "Lock.xor_random";
  let live = live_gates c in
  let live_positions =
    Array.of_list (List.filter (fun i -> live.(i)) (List.init (Netlist.n_gates c) Fun.id))
  in
  if key_bits <= 0 || key_bits > Array.length live_positions then
    invalid_arg "Lock.xor_random: key_bits out of range";
  (* Choose distinct live gate positions and a polarity per key bit. *)
  let positions = live_positions in
  Rng.shuffle rng positions;
  let chosen = Hashtbl.create key_bits in
  let correct_key = Array.make key_bits false in
  for k = 0 to key_bits - 1 do
    let invert = Rng.bool rng in
    Hashtbl.add chosen positions.(k) (k, invert);
    (* XOR gate passes through when key = 0; XNOR when key = 1. *)
    correct_key.(k) <- invert
  done;
  let rewrite b i net =
    match Hashtbl.find_opt chosen i with
    | None -> net
    | Some (k, invert) ->
      let key_net = B.key b k in
      if invert then B.xnor_ b net key_net else B.xor_ b net key_net
  in
  let b, tr = rebuild c ~n_keys:key_bits ~rewrite in
  Array.iter (fun o -> B.output b (tr o)) (Netlist.outputs c);
  { circuit = B.finish b; correct_key; description = Printf.sprintf "RLL-%d" key_bits }

let point_function ~minterms c =
  require_unlocked c "Lock.point_function";
  let n_in = Netlist.n_inputs c in
  let minterms = List.sort_uniq Int.compare minterms in
  let h = List.length minterms in
  if h = 0 then invalid_arg "Lock.point_function: no minterms";
  List.iter
    (fun m ->
      if m < 0 || m >= 1 lsl n_in then invalid_arg "Lock.point_function: minterm range")
    minterms;
  let n_keys = h * n_in in
  let rewrite _ _ net = net in
  let b, tr = rebuild c ~n_keys ~rewrite in
  let x = Array.init n_in (fun i -> B.input b i) in
  (* Strip unit: fixed comparators for the protected minterms. *)
  let strip_hits = List.map (fun m -> Circuits.equals_const b x m) minterms in
  let strip = B.or_reduce b strip_hits in
  (* Restore unit: one programmable comparator per key block. *)
  let restore_hits =
    List.init h (fun j ->
        let kbits = Array.init n_in (fun i -> B.key b ((j * n_in) + i)) in
        Circuits.equals_bits b x kbits)
  in
  let restore = B.or_reduce b restore_hits in
  let flip = B.xor_ b strip restore in
  let outs = Netlist.outputs c in
  Array.iteri
    (fun idx o ->
      let net = tr o in
      if idx = 0 then B.output b (B.xor_ b net flip) else B.output b net)
    outs;
  let correct_key = Array.make n_keys false in
  List.iteri
    (fun j m ->
      for i = 0 to n_in - 1 do
        correct_key.((j * n_in) + i) <- (m lsr i) land 1 = 1
      done)
    minterms;
  {
    circuit = B.finish b;
    correct_key;
    description = Printf.sprintf "point-function h=%d" h;
  }

let anti_sat ~rng c =
  require_unlocked c "Lock.anti_sat";
  let n_in = Netlist.n_inputs c in
  if n_in < 1 then invalid_arg "Lock.anti_sat: no inputs";
  let n_keys = 2 * n_in in
  let rewrite _ _ net = net in
  let b, tr = rebuild c ~n_keys ~rewrite in
  let x = Array.init n_in (fun i -> B.input b i) in
  (* g(X xor K1): AND-tree; its complement side uses K2. *)
  let xored offset = Array.mapi (fun i xi -> B.xor_ b xi (B.key b (offset + i))) x in
  let g1 = B.and_reduce b (Array.to_list (xored 0)) in
  let g2 = B.and_reduce b (Array.to_list (xored n_in)) in
  let y = B.and_ b g1 (B.not_ b g2) in
  Array.iteri
    (fun idx o ->
      let net = tr o in
      if idx = 0 then B.output b (B.xor_ b net y) else B.output b net)
    (Netlist.outputs c);
  let shared = Array.init n_in (fun _ -> Rng.bool rng) in
  let correct_key = Array.append shared shared in
  { circuit = B.finish b; correct_key; description = "anti-SAT" }

(* Swap layer routing: layer [l] pairs wire [2i + (l mod 2)] with its
   neighbour, so consecutive layers interleave (an omega-network
   flavour).  The fixed scrambling permutation is built from the very
   same swap structure with random controls, so the correct key is the
   layer-reversed control sequence, undoing the scramble exactly. *)
let permutation_network ~rng ~layers c =
  require_unlocked c "Lock.permutation_network";
  if layers <= 0 then invalid_arg "Lock.permutation_network: layers";
  let n_in = Netlist.n_inputs c in
  if n_in < 2 then invalid_arg "Lock.permutation_network: needs >= 2 inputs";
  let pairs_per_layer = n_in / 2 in
  let layer_pairs l =
    let offset = if l mod 2 = 1 && n_in > 2 then 1 else 0 in
    let rec collect i acc =
      if i + 1 >= n_in then List.rev acc else collect (i + 2) ((i, i + 1) :: acc)
    in
    collect offset []
  in
  (* One key bit per swap actually built: offset (odd) layers of an
     even-width network have one swap fewer than full layers, so
     allocating layers * n_in/2 keys would leave dead key inputs —
     free key bits that Rb_lint flags as NET-KEY-MUTE. *)
  let n_keys =
    let rec total l acc =
      if l >= layers then acc else total (l + 1) (acc + List.length (layer_pairs l))
    in
    total 0 0
  in
  (* Random controls for the scramble; applied layer 0 .. layers-1. *)
  let scramble = Array.init layers (fun _ -> Array.init pairs_per_layer (fun _ -> Rng.bool rng)) in
  let apply_fixed perm =
    (* Permute indices according to the scramble controls. *)
    let wires = Array.init n_in Fun.id in
    for l = 0 to layers - 1 do
      List.iteri
        (fun p (i, j) ->
          if scramble.(l).(p) then begin
            let tmp = wires.(i) in
            wires.(i) <- wires.(j);
            wires.(j) <- tmp
          end)
        (layer_pairs l)
    done;
    Array.map (fun i -> perm.(i)) wires
  in
  let b = B.create ~n_inputs:n_in ~n_keys in
  let raw = Array.init n_in (fun i -> B.input b i) in
  (* The scrambled wire order that the chip sees. *)
  let scrambled = apply_fixed raw in
  (* Keyed network: layers applied in reverse order undo the scramble
     when each layer's controls equal the scramble controls of the
     mirrored layer. *)
  let wires = ref (Array.copy scrambled) in
  let correct_key = Array.make n_keys false in
  let next_key = ref 0 in
  for l = 0 to layers - 1 do
    let src_layer = layers - 1 - l in
    let next = Array.copy !wires in
    List.iteri
      (fun p (i, j) ->
        let k_idx = !next_key in
        incr next_key;
        let kn = B.key b k_idx in
        let w = !wires in
        next.(i) <- B.mux b ~sel:kn ~a:w.(i) ~b:w.(j);
        next.(j) <- B.mux b ~sel:kn ~a:w.(j) ~b:w.(i);
        correct_key.(k_idx) <- scramble.(src_layer).(p))
      (layer_pairs src_layer);
    wires := next
  done;
  (* Rebuild the payload circuit on top of the descrambled wires. *)
  let base = n_in in
  let map = Array.make (Netlist.n_nets c) (-1) in
  Array.iteri (fun i w -> map.(i) <- w) !wires;
  let tr n =
    let m = map.(n) in
    assert (m >= 0);
    m
  in
  Array.iteri
    (fun i g ->
      let g' =
        match (g : Netlist.gate) with
        | And (x, y) -> Netlist.And (tr x, tr y)
        | Or (x, y) -> Netlist.Or (tr x, tr y)
        | Xor (x, y) -> Netlist.Xor (tr x, tr y)
        | Nand (x, y) -> Netlist.Nand (tr x, tr y)
        | Nor (x, y) -> Netlist.Nor (tr x, tr y)
        | Xnor (x, y) -> Netlist.Xnor (tr x, tr y)
        | Not x -> Netlist.Not (tr x)
        | Buf x -> Netlist.Buf (tr x)
        | Mux (s, x, y) -> Netlist.Mux (tr s, tr x, tr y)
        | Const v -> Netlist.Const v
      in
      map.(base + i) <- B.gate b g')
    (Netlist.gates c);
  Array.iter (fun o -> B.output b (tr o)) (Netlist.outputs c);
  {
    circuit = B.finish b;
    correct_key;
    description = Printf.sprintf "permnet-%dx%d" layers pairs_per_layer;
  }

let wrong_key_locked_minterms locked ~key =
  let c = locked.circuit in
  let n_in = Netlist.n_inputs c in
  if n_in > 20 then invalid_arg "Lock.wrong_key_locked_minterms: input space too large";
  let pack_key k =
    Array.to_list k
    |> List.mapi (fun i b -> if b then 1 lsl i else 0)
    |> List.fold_left ( lor ) 0
  in
  let golden = pack_key locked.correct_key in
  let wrong = pack_key key in
  let rec sweep x acc =
    if x < 0 then acc
    else
      let ref_out = Netlist.eval_words c ~inputs:x ~keys:golden in
      let out = Netlist.eval_words c ~inputs:x ~keys:wrong in
      sweep (x - 1) (if ref_out <> out then x :: acc else acc)
  in
  sweep ((1 lsl n_in) - 1) []

let error_rate locked ~key =
  let n_in = Netlist.n_inputs locked.circuit in
  let errors = List.length (wrong_key_locked_minterms locked ~key) in
  float_of_int errors /. float_of_int (1 lsl n_in)

let gate_overhead locked ~baseline =
  let extra = Netlist.n_gates locked.circuit - Netlist.n_gates baseline in
  float_of_int extra /. float_of_int (Netlist.n_gates baseline)
