type const = Known of bool | Unknown

let fanin = function
  | Netlist.And (a, b)
  | Netlist.Or (a, b)
  | Netlist.Xor (a, b)
  | Netlist.Nand (a, b)
  | Netlist.Nor (a, b)
  | Netlist.Xnor (a, b) -> [ a; b ]
  | Netlist.Not a | Netlist.Buf a -> [ a ]
  | Netlist.Mux (s, a, b) -> [ s; a; b ]
  | Netlist.Const _ -> []

let base c = Netlist.n_inputs c + Netlist.n_keys c

let structural_errors c =
  let b = base c in
  let errs = ref [] in
  Array.iteri
    (fun i g ->
      let driven = b + i in
      List.iter (fun n -> if n < 0 || n >= driven then errs := (i, n) :: !errs) (fanin g))
    (Netlist.gates c);
  List.rev !errs

let invalid_outputs c =
  let total = Netlist.n_nets c in
  let errs = ref [] in
  Array.iteri
    (fun pos n -> if n < 0 || n >= total then errs := (pos, n) :: !errs)
    (Netlist.outputs c);
  List.rev !errs

(* Operand validity for traversals: in range and not a forward
   reference, so recursion always descends towards lower nets. *)
let operand_ok ~driven n = n >= 0 && n < driven

let output_cone c =
  let b = base c in
  let gates = Netlist.gates c in
  let total = Netlist.n_nets c in
  let cone = Array.make total false in
  let rec visit n =
    if n >= 0 && n < total && not cone.(n) then begin
      cone.(n) <- true;
      if n >= b then
        List.iter (fun m -> if operand_ok ~driven:n m then visit m) (fanin gates.(n - b))
    end
  in
  Array.iter visit (Netlist.outputs c);
  cone

let constants c =
  let b = base c in
  let gates = Netlist.gates c in
  let values = Array.make (Netlist.n_nets c) Unknown in
  let v driven n = if operand_ok ~driven n then values.(n) else Unknown in
  Array.iteri
    (fun i g ->
      let driven = b + i in
      let v = v driven in
      let r =
        match g with
        | Netlist.Const k -> Known k
        | Netlist.Buf a -> v a
        | Netlist.Not a -> (match v a with Known k -> Known (not k) | Unknown -> Unknown)
        | Netlist.And (a, b') ->
          (match (v a, v b') with
           | Known false, _ | _, Known false -> Known false
           | Known x, Known y -> Known (x && y)
           | _ -> Unknown)
        | Netlist.Nand (a, b') ->
          (match (v a, v b') with
           | Known false, _ | _, Known false -> Known true
           | Known x, Known y -> Known (not (x && y))
           | _ -> Unknown)
        | Netlist.Or (a, b') ->
          (match (v a, v b') with
           | Known true, _ | _, Known true -> Known true
           | Known x, Known y -> Known (x || y)
           | _ -> Unknown)
        | Netlist.Nor (a, b') ->
          (match (v a, v b') with
           | Known true, _ | _, Known true -> Known false
           | Known x, Known y -> Known (not (x || y))
           | _ -> Unknown)
        | Netlist.Xor (a, b') ->
          if a = b' then Known false
          else
            (match (v a, v b') with
             | Known x, Known y -> Known (x <> y)
             | _ -> Unknown)
        | Netlist.Xnor (a, b') ->
          if a = b' then Known true
          else
            (match (v a, v b') with
             | Known x, Known y -> Known (x = y)
             | _ -> Unknown)
        | Netlist.Mux (s, a, b') ->
          (match v s with
           | Known false -> v a
           | Known true -> v b'
           | Unknown ->
             (match (v a, v b') with
              | Known x, Known y when x = y -> Known x
              | _ -> Unknown))
      in
      values.(driven) <- r)
    gates;
  values

let live_nets c =
  let b = base c in
  let gates = Netlist.gates c in
  let total = Netlist.n_nets c in
  let consts = constants c in
  let live = Array.make total false in
  let rec visit n =
    if n >= 0 && n < total && (not live.(n)) && consts.(n) = Unknown then begin
      live.(n) <- true;
      if n >= b then begin
        let follow m = if operand_ok ~driven:n m then visit m in
        match gates.(n - b) with
        | Netlist.Mux (s, a, b') ->
          (* A known select cuts the unselected branch out of the
             circuit; known data operands are refused by [visit]. *)
          (match if operand_ok ~driven:n s then consts.(s) else Unknown with
           | Known false -> follow a
           | Known true -> follow b'
           | Unknown ->
             follow s;
             follow a;
             follow b')
        | g -> List.iter follow (fanin g)
      end
    end
  in
  Array.iter visit (Netlist.outputs c);
  live
