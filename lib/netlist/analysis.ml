type const = Known of bool | Unknown

let base c = Netlist.n_inputs c + Netlist.n_keys c

let structural_errors c =
  let b = base c in
  let errs = ref [] in
  Array.iteri
    (fun i g ->
      let driven = b + i in
      List.iter
        (fun n -> if n < 0 || n >= driven then errs := (i, n) :: !errs)
        (Netlist.gate_fanin g))
    (Netlist.gates c);
  List.rev !errs

let invalid_outputs c =
  let total = Netlist.n_nets c in
  let errs = ref [] in
  Array.iteri
    (fun pos n -> if n < 0 || n >= total then errs := (pos, n) :: !errs)
    (Netlist.outputs c);
  List.rev !errs
