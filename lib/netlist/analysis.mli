(** Structural well-formedness checks over gate-level netlists.

    These are the two facts a consumer must establish before trusting
    any deeper traversal of a circuit assembled with
    {!Netlist.unchecked}: that every gate operand names an existing,
    earlier net, and that every declared output names a net inside the
    circuit. A forward reference (an operand at or beyond the gate's
    own driven net — a combinational cycle once the netlist is viewed
    as a graph) is reported, not followed.

    The semantic analyses that used to live here — constant
    propagation, output cones, liveness — are now instantiations of
    the dataflow engine in [Rb_analysis] (see [Rb_analysis.Ternary] and
    [Rb_analysis.Engine.output_cone]), which handles cyclic inputs by
    fixpoint iteration instead of refusing to traverse them. *)

type const =
  | Known of bool  (** statically constant under every input/key *)
  | Unknown

val structural_errors : Netlist.t -> (int * Netlist.net) list
(** Ill-formed gate operands: [(gate_index, operand_net)] for every
    operand that is negative, out of net range, or a forward reference
    (at or past the gate's own driven net). Ascending gate index. *)

val invalid_outputs : Netlist.t -> (int * Netlist.net) list
(** Output declarations naming a net outside the circuit:
    [(output_position, net)]. *)
