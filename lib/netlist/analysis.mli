(** Reusable structural analyses over gate-level netlists.

    The lint rules in [Rb_lint] (and any future netlist optimizer) need
    the same three facts about a circuit: which operand references are
    structurally ill-formed, which nets can influence an output, and
    which nets are statically constant. This module computes all three
    without assuming the netlist came from {!Netlist.Builder}, so it is
    safe on circuits assembled with {!Netlist.unchecked} — a forward
    reference (an operand net at or beyond the gate's own driven net)
    is reported, not followed, which is what makes every traversal here
    terminate even on cyclic inputs. *)

type const =
  | Known of bool  (** statically constant under every input/key *)
  | Unknown

val structural_errors : Netlist.t -> (int * Netlist.net) list
(** Ill-formed gate operands: [(gate_index, operand_net)] for every
    operand that is negative, out of net range, or a forward reference
    (at or past the gate's own driven net — a combinational cycle once
    the netlist is viewed as a graph). Ascending gate index. *)

val invalid_outputs : Netlist.t -> (int * Netlist.net) list
(** Output declarations naming a net outside the circuit:
    [(output_position, net)]. *)

val output_cone : Netlist.t -> bool array
(** Per net (length {!Netlist.n_nets}): is the net an output or in the
    transitive structural fan-in of one? The complement over gate nets
    is dead logic. Ill-formed operands are skipped. *)

val constants : Netlist.t -> const array
(** Per net: forward constant propagation. Inputs and keys are
    [Unknown]; [Const] gates seed the lattice; gate rules include the
    identities that strip careless locking ([x XOR x = 0],
    [x XNOR x = 1], [AND]/[OR] absorption, muxes with a known select
    or identical known branches). Operands that are ill-formed or
    forward references stay [Unknown]. *)

val live_nets : Netlist.t -> bool array
(** Per net: can the net still influence an output after constant
    folding? Traversal from the outputs that refuses to enter
    statically-[Known] nets and, at a mux with a known select, only
    follows the selected branch. A key input that is in
    {!output_cone} but not live is removable by constant propagation —
    the "trivially strippable" locking defect. *)
