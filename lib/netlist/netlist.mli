(** Gate-level combinational netlists.

    Logic locking acts on the gate-level implementation of a functional
    unit (Sec. II-A); the SAT attack [10] acts on the same
    representation through a CNF encoding. This module provides the
    shared circuit type: a flat array of two-input gates over an
    indexed set of nets, with primary inputs first, key inputs second,
    and one net driven per gate.

    Nets are identified by dense integers: nets [0 .. n_inputs-1] are
    primary inputs, [n_inputs .. n_inputs+n_keys-1] are key inputs, and
    gate [i] drives net [n_inputs + n_keys + i]. *)

type net = int

type gate =
  | And of net * net
  | Or of net * net
  | Xor of net * net
  | Nand of net * net
  | Nor of net * net
  | Xnor of net * net
  | Not of net
  | Buf of net
  | Mux of net * net * net
      (** [Mux (sel, a, b)] is [a] when [sel] is false, [b] otherwise *)
  | Const of bool

type t

val n_inputs : t -> int
val n_keys : t -> int
val n_gates : t -> int
val n_nets : t -> int
val gates : t -> gate array
val outputs : t -> net array

val input_net : t -> int -> net
(** [input_net c i] is the net of primary input [i]. *)

val gate_fanin : gate -> net list
(** Operand nets of a gate, in declaration order ([Mux] lists the
    select first). The one fan-in enumeration every traversal in the
    repo shares. *)

val key_net : t -> int -> net
(** [key_net c i] is the net of key input [i]. *)

val eval : t -> inputs:bool array -> keys:bool array -> bool array
(** Simulate the circuit; returns output values in declaration order.
    Raises [Invalid_argument] on width mismatches. *)

val eval_words : t -> inputs:int -> keys:int -> int
(** Word-level convenience: bit [i] of [inputs]/[keys] feeds input/key
    [i] (LSB first); the result packs the outputs the same way. Raises
    [Invalid_argument] when the circuit has more than 62 inputs, keys
    or outputs (the packed words would not fit an OCaml [int]). *)

val unchecked : n_inputs:int -> n_keys:int -> gates:gate array -> outputs:net array -> t
(** Assemble a netlist without the {!Builder}'s structural checks —
    the entry point for circuits produced outside this library, which
    may contain forward references, out-of-range operands or dangling
    outputs. Run such circuits through [Rb_lint] (or {!Analysis})
    before trusting {!eval} on them. *)

val fanin_cone_size : t -> net -> int
(** Number of gates in the transitive fan-in of a net; a crude area
    proxy used by overhead reports. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: inputs/keys/gates/outputs. *)

(** Imperative netlist construction. *)
module Builder : sig
  type netlist := t
  type t

  val create : n_inputs:int -> n_keys:int -> t
  val input : t -> int -> net
  val key : t -> int -> net
  val gate : t -> gate -> net
  (** Append a gate; returns the net it drives. Operand nets must
      already exist. *)

  val not_ : t -> net -> net
  val and_ : t -> net -> net -> net
  val or_ : t -> net -> net -> net
  val xor_ : t -> net -> net -> net
  val xnor_ : t -> net -> net -> net
  val mux : t -> sel:net -> a:net -> b:net -> net
  val const : t -> bool -> net

  val and_reduce : t -> net list -> net
  (** Conjunction of a non-empty list of nets (balanced tree). *)

  val or_reduce : t -> net list -> net
  (** Disjunction of a non-empty list of nets (balanced tree). *)

  val output : t -> net -> unit
  (** Declare an output, in call order. *)

  val finish : t -> netlist
end
