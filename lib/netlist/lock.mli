(** Gate-level logic-locking constructions.

    Three constructions spanning the design space of Sec. II-A:

    - {!xor_random}: traditional random XOR/XNOR key-gate insertion
      (RLL). High corruption, falls to the SAT attack in a handful of
      iterations — the "high error, low resilience" end of the
      trade-off.
    - {!point_function}: critical-minterm locking in the SFLL/TTLock
      style. The designer picks protected input minterms; the circuit
      output is stripped on exactly those minterms and a key-programmed
      restore unit re-inserts them. Wrong keys corrupt a small static
      minterm set, so SAT resilience scales as paper Eqn. 1 — the
      scheme family both of the paper's algorithms assume.
    - {!permutation_network}: Full-Lock-style keyed routing network, an
      exponential-SAT-iteration-runtime scheme used by the Sec. V-C
      methodology to top up resilience.

    Each construction returns the locked netlist together with a
    correct key; the original circuit serves as the attack oracle. *)

type locked = {
  circuit : Netlist.t;  (** netlist with key inputs *)
  correct_key : bool array;  (** one functionally-correct key *)
  description : string;  (** human-readable scheme summary *)
}

val xor_random : rng:Rb_util.Rng.t -> key_bits:int -> Netlist.t -> locked
(** Insert [key_bits] XOR/XNOR key gates after distinct, randomly
    chosen gates of an unlocked circuit. Raises [Invalid_argument] if
    the circuit has fewer gates than [key_bits] or already has keys. *)

val point_function : minterms:int list -> Netlist.t -> locked
(** Lock an unlocked circuit on the given protected input minterms
    (packed LSB-first over the circuit's inputs, deduplicated). Key
    length is [|minterms| * n_inputs]; the correct key programs the
    restore unit with exactly the protected minterms. For any wrong
    key, output bit 0 is corrupted on each protected minterm that the
    key fails to restore (plus the wrongly-programmed patterns), so the
    locked-input set is static across wrong keys as required by
    Sec. IV. *)

val anti_sat : rng:Rb_util.Rng.t -> Netlist.t -> locked
(** Anti-SAT block (Xie & Srivastava, the basis of Strong Anti-SAT
    [6]): two complementary AND-trees over key-XORed inputs,
    [Y = g(X xor K1) and not g(X xor K2)], whose output flips the
    circuit's bit 0. Any key with [K1 = K2] is correct ([Y] is
    identically 0); for other wrong keys [Y] fires on exactly one input
    pattern, so corruption stays point-function-sparse while each SAT
    DIP eliminates O(1) wrong keys. Key length is [2 * n_inputs]; the
    returned correct key is K1 = K2 = random. *)

val permutation_network : rng:Rb_util.Rng.t -> layers:int -> Netlist.t -> locked
(** Prepend [layers] key-controlled swap layers (2 muxes per swap) to
    the circuit's primary inputs, after scrambling the inputs with a
    random fixed permutation that the correct key undoes. One key bit
    per swap: full layers carry [n_inputs / 2] swaps, the brick-offset
    (odd) layers of an even-width network one fewer, so every key bit
    drives a real swap. *)

val wrong_key_locked_minterms : locked -> key:bool array -> int list
(** Exhaustively enumerate the input minterms on which the locked
    circuit under [key] differs from the correct-key behaviour.
    Exponential in input count; intended for the <= 16-input units used
    in tests and benches. *)

val error_rate : locked -> key:bool array -> float
(** Fraction of the input space corrupted under [key] (exhaustive). *)

val gate_overhead : locked -> baseline:Netlist.t -> float
(** Relative gate-count increase versus the unlocked baseline — the
    area-overhead proxy used when reproducing the Sec. V-C Full-Lock
    comparison. *)
