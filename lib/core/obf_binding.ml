module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Matcher = Rb_matching.Matcher
module Allocation = Rb_hls.Allocation
module Bind_engine = Rb_hls.Bind_engine

let bind k config schedule allocation =
  let weight ~kind:_ ~cycle:_ ~op ~fu =
    float_of_int (Cost.edge_weight k config ~fu ~op)
  in
  Bind_engine.bind ~objective:`Maximize ~weight schedule allocation

module Fast = struct
  type t = {
    table : Cost.cand_table;
    fus : int array;
    cycles : int array array;
    n_ops : int;
  }

  let prepare table schedule allocation ~kind =
    let fus = Array.of_list (Allocation.fu_ids allocation kind) in
    let cycles =
      Array.init (Schedule.n_cycles schedule) (fun c ->
          Array.of_list (Schedule.ops_in_cycle schedule kind c))
    in
    Array.iter
      (fun ops ->
        if Array.length ops > Array.length fus then
          invalid_arg "Obf_binding.Fast.prepare: allocation too small")
      cycles;
    { table; fus; cycles; n_ops = Dfg.op_count (Schedule.dfg schedule) }

  (* One max-weight matching per cycle. [solve_cycle] is either the
     totals-only registry path (no tie canonicalization — optimal
     totals are matcher-invariant, and this is the codesign sweep's
     hot loop) or the canonical-assignment path for materialized
     bindings. *)
  let run t ~locks ~solve_cycle =
    let subset_of = Hashtbl.create 8 in
    List.iter
      (fun (fu, subset) ->
        if not (Array.exists (( = ) fu) t.fus) then
          invalid_arg "Obf_binding.Fast: locked FU of the wrong kind";
        Hashtbl.replace subset_of fu subset)
      locks;
    let total = ref 0 in
    let weigh op fu =
      match Hashtbl.find_opt subset_of fu with
      | None -> 0.0
      | Some subset -> float_of_int (Cost.subset_weight t.table ~subset ~op)
    in
    Array.iter
      (fun ops ->
        if Array.length ops > 0 then begin
          let matrix =
            Array.map (fun op -> Array.map (fun fu -> weigh op fu) t.fus) ops
          in
          total := !total + solve_cycle ops matrix
        end)
      t.cycles;
    !total

  let best_errors t ~locks =
    run t ~locks ~solve_cycle:(fun _ matrix ->
        int_of_float (Matcher.max_weight_total_dense matrix))

  let best_binding t ~locks =
    let fu_of_op = Array.make t.n_ops (-1) in
    let errors =
      run t ~locks ~solve_cycle:(fun ops matrix ->
          let assignment = Matcher.max_weight_dense matrix in
          let sub = ref 0 in
          Array.iteri
            (fun row col ->
              sub := !sub + int_of_float matrix.(row).(col);
              fu_of_op.(ops.(row)) <- t.fus.(col))
            assignment;
          !sub)
    in
    (fu_of_op, errors)
end
