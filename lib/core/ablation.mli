(** Ablation studies of the design choices around the paper's
    algorithms.

    The paper leaves several knobs open or argues them briefly; these
    drivers quantify them on our substrate:

    - {!candidate_strategies} (Sec. V-B.1): candidate locked-input
      lists may come from the most common inputs (best error, but
      leakable if the attacker knows the distribution), a random
      sample, or the least common inputs. Co-design "still maximizes
      locking-induced application errors" for any C — this measures
      what each choice costs.
    - {!generalization}: the K matrix is estimated on a {e typical}
      trace; does a binding tuned on one half of the workload still
      inject errors on the unseen half?
    - {!allocation_sensitivity}: how the error-increase ratio moves
      when the design is scheduled onto fewer or more FUs (more FUs =
      more binding freedom for the security-aware algorithms, but also
      more places for the baseline to "accidentally" dodge errors).
    - {!scheduler_sensitivity}: path-based vs force-directed front
      ends — checks the results are not an artifact of one scheduling
      style. *)

module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm

type candidate_strategy = Most_common | Random_sample | Least_common

val strategy_name : candidate_strategy -> string

val candidate_list :
  ?n:int ->
  ?seed:int ->
  strategy:candidate_strategy ->
  Rb_sim.Kmatrix.t ->
  Dfg.op_kind ->
  Minterm.t array
(** Build a candidate list under a selection strategy ([n] defaults to
    10; [Least_common] still requires at least one trace occurrence —
    a never-occurring minterm can never inject an error). *)

type strategy_row = {
  strategy : candidate_strategy;
  codesign_errors : int;  (** Eqn. 2 under co-design with this C *)
  candidate_mass : int;  (** total trace occurrences of the chosen C *)
}

val candidate_strategies :
  ?seed:int ->
  ?locked_fus:int ->
  ?minterms_per_fu:int ->
  Experiments.context ->
  Dfg.op_kind ->
  strategy_row list
(** Run co-design under each strategy on one benchmark context
    (defaults: 2 locked FUs, 2 minterms each; fewer when the
    allocation or candidate list is too small). *)

type generalization_row = {
  train_expected : int;  (** Eqn. 2 on the training half's K *)
  train_measured : int;  (** wrong-key error events replayed on the training half *)
  test_measured : int;  (** the same design on the unseen half *)
}

val generalization :
  ?seed:int ->
  Rb_sched.Schedule.t ->
  Rb_sim.Trace.t ->
  Dfg.op_kind ->
  generalization_row
(** Split the trace in half, co-design on the first half, measure
    injected errors on both halves. *)

type sensitivity_row = {
  label : string;
  obf_vs_area : float;  (** mean error-increase ratio, one L=2/m=2 config *)
  n_cycles : int;
}

val allocation_sensitivity :
  ?seed:int -> Rb_dfg.Dfg.t -> (unit -> Rb_sim.Trace.t) -> sensitivity_row list
(** Re-schedule the kernel onto 1..4 FUs per kind and report the
    obfuscation-aware error increase for a fixed locking shape. The
    trace thunk is re-invoked per allocation (trace depends only on
    the DFG). *)

val scheduler_sensitivity :
  ?seed:int -> Rb_dfg.Dfg.t -> (unit -> Rb_sim.Trace.t) -> sensitivity_row list
(** Same report for the two scheduling front ends (path-based list
    scheduling vs force-directed). *)

(** Profiling-budget sensitivity: Eqn. 2 of a lock co-designed on a
    trace prefix, and the corruption that lock actually injects when
    the full trace is replayed. *)
type budget_row = {
  prefix_len : int;  (** samples the K matrix was estimated on *)
  expected : int;  (** Eqn. 2 on the prefix's K *)
  measured : int;  (** error events replayed on the full trace *)
}

val profiling_budget :
  ?n_candidates:int ->
  ?locked_fus:int ->
  ?minterms_per_fu:int ->
  ?prefix_lengths:int list ->
  Rb_sched.Schedule.t ->
  Rb_sim.Trace.t ->
  Dfg.op_kind ->
  budget_row list
(** Re-run candidate selection and co-design on growing trace prefixes
    (default lengths 8..256, 2 locked FUs x 2 minterms). *)
