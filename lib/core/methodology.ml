module Config = Rb_locking.Config
module Limits = Rb_util.Limits

type goal = { target_error_events : int; min_lambda : float }

type plan = {
  solution : Codesign.solution;
  minterms_per_fu : int;
  achieved_errors : int;
  predicted_lambda : float;
  meets_error_target : bool;
  meets_resilience : bool;
  exponential_topup : bool;
  stopped : Limits.reason option;
}

let predicted_lambda_of ?key_bits config =
  match key_bits with
  | None -> Config.lambda_per_fu config
  | Some kb ->
    let input_bits = 2 * Rb_dfg.Word.width in
    List.fold_left
      (fun acc fu ->
        let minterms =
          Rb_dfg.Minterm.Set.cardinal (Config.minterms_of config fu)
        in
        min acc
          (Rb_locking.Resilience.lambda_minterms ~key_bits:kb ~correct_keys:1
             ~input_bits ~minterms))
      infinity (Config.locked_fus config)

let plan_of ?key_bits ?stopped goal minterms_per_fu (solution : Codesign.solution) =
  let predicted_lambda = predicted_lambda_of ?key_bits solution.config in
  let meets_error_target = solution.errors >= goal.target_error_events in
  let meets_resilience = predicted_lambda >= goal.min_lambda in
  {
    solution;
    minterms_per_fu;
    achieved_errors = solution.errors;
    predicted_lambda;
    meets_error_target;
    meets_resilience;
    exponential_topup = not meets_resilience;
    stopped;
  }

let design ?max_minterms_per_fu ?key_bits ?(limits = Limits.none) k schedule
    allocation ~scheme ~locked_fus ~candidates goal =
  let limit =
    Option.value max_minterms_per_fu ~default:(Array.length candidates)
  in
  if limit < 1 then invalid_arg "Methodology.design: empty budget range";
  let solve minterms_per_fu =
    let spec =
      { Codesign.scheme; locked_fus; minterms_per_fu; candidates }
    in
    Codesign.heuristic k schedule allocation spec
  in
  let rec grow m =
    let candidate_plan = plan_of ?key_bits goal m (solve m) in
    if candidate_plan.meets_error_target || m >= limit then candidate_plan
    else
      (* Poll between co-design runs: an interrupted search keeps the
         best (largest) budget reached so far and says why it stopped
         instead of silently presenting a partial answer as final. *)
      match Limits.interrupted limits with
      | Some reason ->
        Limits.note reason;
        { candidate_plan with stopped = Some reason }
      | None -> grow (m + 1)
  in
  grow 1
