module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module Schedule = Rb_sched.Schedule
module Kmatrix = Rb_sim.Kmatrix
module Trace = Rb_sim.Trace
module Exec = Rb_sim.Exec
module Allocation = Rb_hls.Allocation
module Binding = Rb_hls.Binding
module Rng = Rb_util.Rng

type candidate_strategy = Most_common | Random_sample | Least_common

let strategy_name = function
  | Most_common -> "most common"
  | Random_sample -> "random sample"
  | Least_common -> "least common"

let candidate_list ?(n = 10) ?(seed = 3) ~strategy k kind =
  let occurring = Kmatrix.all_minterms ~kind k in
  let chosen =
    match strategy with
    | Most_common -> List.filteri (fun i _ -> i < n) occurring
    | Least_common ->
      let len = List.length occurring in
      List.filteri (fun i _ -> i >= len - n) occurring
    | Random_sample ->
      let arr = Array.of_list occurring in
      let rng = Rng.create seed in
      Rng.shuffle rng arr;
      Array.to_list (Array.sub arr 0 (min n (Array.length arr)))
  in
  Array.of_list (List.map fst chosen)

type strategy_row = {
  strategy : candidate_strategy;
  codesign_errors : int;
  candidate_mass : int;
}

let candidate_strategies ?(seed = 3) ?(locked_fus = 2) ?(minterms_per_fu = 2)
    (ctx : Experiments.context) kind =
  let fus = Allocation.fu_ids ctx.Experiments.allocation kind in
  let locked = List.filteri (fun i _ -> i < locked_fus) fus in
  if locked = [] then []
  else
    List.filter_map
      (fun strategy ->
        let candidates = candidate_list ~seed ~strategy ctx.Experiments.k kind in
        if Array.length candidates < minterms_per_fu then None
        else begin
          let spec =
            {
              Codesign.scheme = Rb_locking.Scheme.Sfll_rem;
              locked_fus = locked;
              minterms_per_fu = min minterms_per_fu (Array.length candidates);
              candidates;
            }
          in
          let solution = Codesign.heuristic ctx.Experiments.k ctx.Experiments.schedule
              ctx.Experiments.allocation spec
          in
          let candidate_mass =
            Array.fold_left
              (fun acc m -> acc + Kmatrix.total_occurrences ctx.Experiments.k m)
              0 candidates
          in
          Some { strategy; codesign_errors = solution.Codesign.errors; candidate_mass }
        end)
      [ Most_common; Random_sample; Least_common ]

type generalization_row = {
  train_expected : int;
  train_measured : int;
  test_measured : int;
}

let generalization ?(seed = 3) schedule trace kind =
  let half = Trace.length trace / 2 in
  if half < 1 then invalid_arg "Ablation.generalization: trace too short";
  let train = Trace.sub trace ~pos:0 ~len:half in
  let test = Trace.sub trace ~pos:half ~len:(Trace.length trace - half) in
  let allocation = Allocation.for_schedule schedule in
  let k_train = Kmatrix.build train in
  let candidates = candidate_list ~seed ~strategy:Most_common k_train kind in
  if Array.length candidates = 0 then invalid_arg "Ablation.generalization: no candidates";
  let fus = Allocation.fu_ids allocation kind in
  let spec =
    {
      Codesign.scheme = Rb_locking.Scheme.Sfll_rem;
      locked_fus = List.filteri (fun i _ -> i < 2) fus;
      minterms_per_fu = min 2 (Array.length candidates);
      candidates;
    }
  in
  let solution = Codesign.heuristic k_train schedule allocation spec in
  let measure t =
    (Exec.application_errors schedule t
       ~fu_of_op:(Binding.fu_array solution.Codesign.binding)
       ~config:solution.Codesign.config)
      .Exec.error_events
  in
  {
    train_expected = solution.Codesign.errors;
    train_measured = measure train;
    test_measured = measure test;
  }

type sensitivity_row = {
  label : string;
  obf_vs_area : float;
  n_cycles : int;
}

(* Error-increase ratio of obfuscation-aware binding for one locked FU
   locking 2 minterms, averaged over candidate pairs, under a given
   schedule. One locked FU isolates the binding-freedom effect: with
   several FUs locking the *same* set, any binding covers a similar
   fraction of occurrences and the ratio collapses toward 1 (an effect
   the candidate-strategy ablation shows separately). *)
let ratio_for ?(seed = 3) schedule trace kind =
  let allocation = Allocation.for_schedule schedule in
  let k = Kmatrix.build trace in
  let candidates = candidate_list ~seed ~strategy:Most_common k kind in
  let fus = Allocation.fu_ids allocation kind in
  if fus = [] || Array.length candidates < 2 then None
  else begin
    let locked_fu = List.hd fus in
    let area = Rb_hls.Area_binding.bind schedule allocation in
    (* average over all pairs of the first 5 candidates *)
    let pairs =
      Rb_util.Combi.k_subsets
        (Array.sub candidates 0 (min 5 (Array.length candidates)))
        2
    in
    (* ratio of total errors across pairs, not mean of per-pair ratios:
       the zero-baseline floor makes per-pair ratios extremely noisy *)
    let e_obf = ref 0 and e_area = ref 0 in
    List.iter
      (fun pair ->
        let locks = [ (locked_fu, Array.to_list pair) ] in
        let config = Rb_locking.Config.make ~scheme:Rb_locking.Scheme.Sfll_rem ~locks in
        let obf = Obf_binding.bind k config schedule allocation in
        e_obf := !e_obf + Cost.expected_errors k obf config;
        e_area := !e_area + Cost.expected_errors k area config)
      pairs;
    Some (Experiments.ratio_vs !e_obf !e_area)
  end

let allocation_sensitivity ?(seed = 3) dfg make_trace =
  List.filter_map
    (fun fu_budget ->
      let limits = { Rb_sched.Scheduler.adders = fu_budget; multipliers = fu_budget } in
      let schedule = Rb_sched.Scheduler.path_based ~limits dfg in
      let trace = make_trace () in
      Option.map
        (fun r ->
          {
            label = string_of_int fu_budget ^ " FUs/kind";
            obf_vs_area = r;
            n_cycles = Schedule.n_cycles schedule;
          })
        (ratio_for ~seed schedule trace Dfg.Add))
    [ 1; 2; 3; 4 ]

type budget_row = { prefix_len : int; expected : int; measured : int }

let profiling_budget ?(n_candidates = 10) ?(locked_fus = 2) ?(minterms_per_fu = 2)
    ?(prefix_lengths = [ 8; 16; 32; 64; 128; 256 ]) schedule full kind =
  let allocation = Allocation.for_schedule schedule in
  List.map
    (fun len ->
      let prefix = Trace.sub full ~pos:0 ~len in
      let k = Kmatrix.build prefix in
      let candidates =
        Array.of_list (Kmatrix.top_minterms ~kind k ~n:n_candidates)
      in
      let fus = Allocation.fu_ids allocation kind in
      let spec =
        {
          Codesign.scheme = Rb_locking.Scheme.Sfll_rem;
          locked_fus = List.filteri (fun i _ -> i < locked_fus) fus;
          minterms_per_fu = min minterms_per_fu (Array.length candidates);
          candidates;
        }
      in
      let solution = Codesign.heuristic k schedule allocation spec in
      let report =
        Exec.application_errors schedule full
          ~fu_of_op:(Binding.fu_array solution.Codesign.binding)
          ~config:solution.Codesign.config
      in
      {
        prefix_len = len;
        expected = solution.Codesign.errors;
        measured = report.Exec.error_events;
      })
    prefix_lengths

let scheduler_sensitivity ?(seed = 3) dfg make_trace =
  let schedules =
    [
      ("path-based", Rb_sched.Scheduler.path_based dfg);
      ( "force-directed",
        Rb_sched.Force_directed.schedule
          ~latency:(Dfg.critical_path_length dfg + 2)
          dfg );
    ]
  in
  List.filter_map
    (fun (label, schedule) ->
      let trace = make_trace () in
      Option.map
        (fun r ->
          { label; obf_vs_area = r; n_cycles = Schedule.n_cycles schedule })
        (ratio_for ~seed schedule trace Dfg.Add))
    schedules
