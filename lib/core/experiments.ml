module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module Schedule = Rb_sched.Schedule
module Kmatrix = Rb_sim.Kmatrix
module Allocation = Rb_hls.Allocation
module Binding = Rb_hls.Binding
module Profile = Rb_hls.Profile
module Config = Rb_locking.Config
module Combi = Rb_util.Combi
module Rng = Rb_util.Rng
module Stats = Rb_util.Stats
module Pool = Rb_util.Pool
module Json = Rb_util.Json
module Checkpoint = Rb_util.Checkpoint

(* Fan a map out over the pool when one is supplied; the inline
   fallback keeps every driver usable without a pool (and is what a
   nested map inside a pool task resolves to). *)
let pool_map_list pool f l =
  match pool with
  | None -> List.map f l
  | Some pool -> Pool.map_list pool ~f l

(* Fault-isolated variant: the pool-free path goes through the same
   per-task wrapper, so fault sites, retries and error capture behave
   identically with and without workers. *)
let pool_map_result pool ~retries f arr =
  match pool with
  | None ->
    Array.mapi (fun i x -> Pool.run_task_result ~retries ~index:i (fun () -> f x)) arr
  | Some pool -> Pool.map_array_result ~retries pool ~f arr

(* Every binding/config this module produces is asserted lint-clean
   before it is measured, so a regression in a binder or the co-design
   search fails loudly instead of skewing a figure. *)
let assert_lint ?config ?candidates ~subject schedule allocation binding =
  Rb_lint.Lint.assert_clean
    (Rb_lint.Lint.design ?config ?candidates ~subject schedule allocation
       ~fu_of_op:(Binding.fu_array binding))

type context = {
  benchmark : string;
  schedule : Schedule.t;
  allocation : Allocation.t;
  k : Kmatrix.t;
  profile : Profile.t;
  area_binding : Binding.t;
  power_binding : Binding.t;
  candidates_add : Minterm.t array;
  candidates_mul : Minterm.t array;
}

let context ?(n_candidates = 10) ~name schedule trace =
  let allocation = Allocation.for_schedule schedule in
  let k = Kmatrix.build trace in
  let profile = Profile.build trace in
  let area_binding = Rb_hls.Area_binding.bind schedule allocation in
  let power_binding = Rb_hls.Power_binding.bind schedule allocation ~profile in
  assert_lint ~subject:(name ^ "/area-binding") schedule allocation area_binding;
  assert_lint ~subject:(name ^ "/power-binding") schedule allocation power_binding;
  let top kind = Array.of_list (Kmatrix.top_minterms ~kind k ~n:n_candidates) in
  {
    benchmark = name;
    schedule;
    allocation;
    k;
    profile;
    area_binding;
    power_binding;
    candidates_add = top Dfg.Add;
    candidates_mul = top Dfg.Mul;
  }

let candidates_for ctx = function
  | Dfg.Add -> ctx.candidates_add
  | Dfg.Mul -> ctx.candidates_mul

type combo_errors = { e_area : int; e_power : int; e_obf : int }

type config_result = {
  kind : Dfg.op_kind;
  locked_fu_count : int;
  minterms_per_fu : int;
  combos_total : int;
  combos : combo_errors array;
  sampled : bool;
  e_codesign_optimal : int;
  optimal_candidates_used : int;
  e_codesign_heuristic : int;
  heuristic_searched : int;
}

(* Locked-input occurrences per (FU, candidate) for a fixed binding:
   lets a combination's baseline error be summed in O(L * m). *)
let fixed_binding_weights table binding fus =
  let n_cands = Array.length (Cost.candidates table) in
  List.map
    (fun fu ->
      let row = Array.make n_cands 0 in
      List.iter
        (fun op ->
          for c = 0 to n_cands - 1 do
            row.(c) <- row.(c) + Cost.cand_count table ~cand:c ~op
          done)
        (Binding.ops_on_fu binding fu);
      (fu, row))
    fus

let combo_error weights assignment =
  List.fold_left2
    (fun acc (_, row) subset ->
      Array.fold_left (fun acc c -> acc + row.(c)) acc subset)
    0 weights assignment

let random_subset rng n_cands m =
  let indices = Array.init n_cands Fun.id in
  Rng.shuffle rng indices;
  let subset = Array.sub indices 0 m in
  Array.sort Int.compare subset;
  subset

let run_codesign_optimal ~max_optimal_assignments k schedule allocation spec =
  match Codesign.optimal ~max_assignments:max_optimal_assignments k schedule allocation spec with
  | `Solution s -> (s.Codesign.errors, Array.length spec.Codesign.candidates)
  | `Too_large _ ->
    (* Re-run on a shortened candidate list (most frequent first) so an
       exact answer is still reported, with the reduction recorded. *)
    let rec shrink n =
      let reduced =
        { spec with Codesign.candidates = Array.sub spec.Codesign.candidates 0 n }
      in
      if Codesign.search_space reduced <= max_optimal_assignments then
        match Codesign.optimal ~max_assignments:max_optimal_assignments k schedule
                allocation reduced
        with
        | `Solution s -> (s.Codesign.errors, n)
        | `Too_large _ -> assert false
      else shrink (n - 1)
    in
    shrink (Array.length spec.Codesign.candidates - 1)

(* Combination ranges are evaluated in fixed-size chunks, each an
   independent pool task. The chunk layout and every per-sample RNG
   derive from the harness seed and the combination index alone — never
   from the worker count — so a parallel sweep is byte-identical to the
   sequential one. *)
let combo_chunk_size = 256

(* Transient per-chunk failures (the fault harness's "pool/task" site,
   or any future flaky backend) are retried in place this many times
   before the sweep gives up on the whole run. *)
let sweep_chunk_retries = 2

(* Journal codec: one evaluated chunk is an array of combo_errors,
   stored as a list of [e_area; e_power; e_obf] triples. Decoding is
   defensive — a record that does not match (schema drift, truncated
   value) falls back to recomputing the chunk. *)
let encode_chunk combos =
  Json.List
    (Array.to_list combos
    |> List.map (fun c ->
           Json.List [ Json.Int c.e_area; Json.Int c.e_power; Json.Int c.e_obf ]))

let decode_chunk ~len json =
  match json with
  | Json.List items when List.length items = len -> (
    try
      Some
        (Array.of_list
           (List.map
              (function
                | Json.List [ Json.Int a; Json.Int p; Json.Int o ] ->
                  { e_area = a; e_power = p; e_obf = o }
                | _ -> raise Exit)
              items))
    with Exit -> None)
  | _ -> None

let sweep ?pool ?journal ?(seed = 7) ?(max_combos_per_config = 2000)
    ?(max_optimal_assignments = 300_000) ?(fu_counts = [ 1; 2; 3 ])
    ?(minterm_counts = [ 1; 2; 3 ]) ctx kind =
  let candidates = candidates_for ctx kind in
  let n_cands = Array.length candidates in
  let fus = Allocation.fu_ids ctx.allocation kind in
  let available = List.length fus in
  if n_cands = 0 || available = 0 then []
  else begin
    let table = Cost.cand_table ctx.k candidates in
    let fast = Obf_binding.Fast.prepare table ctx.schedule ctx.allocation ~kind in
    let run_config locked_fu_count minterms_per_fu =
      let locked_fus = List.filteri (fun i _ -> i < locked_fu_count) fus in
      let n_locked = List.length locked_fus in
      let area_w = fixed_binding_weights table ctx.area_binding locked_fus in
      let power_w = fixed_binding_weights table ctx.power_binding locked_fus in
      let per_fu = Combi.choose n_cands minterms_per_fu in
      let combos_total = Combi.product_size (List.map (fun _ -> per_fu) locked_fus) in
      let config_seed =
        seed + (1000 * locked_fu_count) + minterms_per_fu
        + Hashtbl.hash (ctx.benchmark, Dfg.kind_label kind)
      in
      let eval assignment =
        let locks = List.combine locked_fus assignment in
        {
          e_area = combo_error area_w assignment;
          e_power = combo_error power_w assignment;
          e_obf = Obf_binding.Fast.best_errors fast ~locks;
        }
      in
      let n_combos, sampled, assignment_at =
        if combos_total <= max_combos_per_config then begin
          let indices = Array.init n_cands Fun.id in
          let subsets = Array.of_list (Combi.k_subsets indices minterms_per_fu) in
          let base = Array.length subsets in
          (* Linear index -> one subset per locked FU, first FU most
             significant: lexicographic enumeration order. *)
          let assignment_at t =
            let rec go j t acc =
              if j < 0 then acc else go (j - 1) (t / base) (subsets.(t mod base) :: acc)
            in
            go (n_locked - 1) t []
          in
          (combos_total, false, assignment_at)
        end
        else begin
          let assignment_at t =
            let rng = Rng.create (Hashtbl.hash (config_seed, t)) in
            List.map (fun _ -> random_subset rng n_cands minterms_per_fu) locked_fus
          in
          (max_combos_per_config, true, assignment_at)
        end
      in
      let n_chunks = (n_combos + combo_chunk_size - 1) / combo_chunk_size in
      let chunk_len chunk = min combo_chunk_size (n_combos - (chunk * combo_chunk_size)) in
      (* Keys pin everything a chunk's contents depend on (seed,
         benchmark, kind, configuration, combo count), so a stale or
         differently-parameterized journal can never replay into the
         wrong cell. *)
      let chunk_key chunk =
        Printf.sprintf "sweep/s%d/%s/%s/fu%d/m%d/c%d/%d" seed ctx.benchmark
          (Dfg.kind_label kind) locked_fu_count minterms_per_fu n_combos chunk
      in
      let compute_chunk chunk =
        let lo = chunk * combo_chunk_size in
        Array.init (chunk_len chunk) (fun i -> eval (assignment_at (lo + i)))
      in
      let chunk_task chunk =
        match journal with
        | None -> compute_chunk chunk
        | Some j -> (
          let key = chunk_key chunk in
          match
            Option.bind (Checkpoint.find j key) (decode_chunk ~len:(chunk_len chunk))
          with
          | Some combos -> combos
          | None ->
            let combos = compute_chunk chunk in
            Checkpoint.record j key (encode_chunk combos);
            combos)
      in
      let chunk_results =
        pool_map_result pool ~retries:sweep_chunk_retries chunk_task
          (Array.init n_chunks Fun.id)
      in
      (* Chunks that still fail after the retries abort the sweep —
         but only after every other chunk ran (and journaled), so a
         resumed run picks up from here. Lowest index reports first. *)
      let chunks =
        Array.map
          (function
            | Ok combos -> combos
            | Error (e : Pool.task_error) ->
              failwith
                (Printf.sprintf "Experiments.sweep: %s failed after %d attempt(s): %s"
                   (chunk_key e.index) e.attempts e.message))
          chunk_results
      in
      let combos = Array.concat (Array.to_list chunks) in
      let spec =
        {
          Codesign.scheme = Rb_locking.Scheme.Sfll_rem;
          locked_fus;
          minterms_per_fu;
          candidates;
        }
      in
      let e_opt, opt_cands =
        run_codesign_optimal ~max_optimal_assignments ctx.k ctx.schedule ctx.allocation spec
      in
      let heur = Codesign.heuristic ctx.k ctx.schedule ctx.allocation spec in
      assert_lint ~config:heur.Codesign.config ~candidates
        ~subject:
          (ctx.benchmark ^ "/" ^ Dfg.kind_label kind ^ "/"
           ^ string_of_int locked_fu_count ^ "FU x "
           ^ string_of_int minterms_per_fu ^ "m/codesign")
        ctx.schedule ctx.allocation heur.Codesign.binding;
      {
        kind;
        locked_fu_count;
        minterms_per_fu;
        combos_total;
        combos;
        sampled;
        e_codesign_optimal = e_opt;
        optimal_candidates_used = opt_cands;
        e_codesign_heuristic = heur.Codesign.errors;
        heuristic_searched = heur.Codesign.assignments_searched;
      }
    in
    List.concat_map
      (fun locked_fu_count ->
        if locked_fu_count > available then []
        else
          List.filter_map
            (fun minterms_per_fu ->
              if minterms_per_fu > n_cands then None
              else Some (run_config locked_fu_count minterms_per_fu))
            minterm_counts)
      fu_counts
  end

let ratio_vs security baseline =
  float_of_int security /. float_of_int (max baseline 1)

type fig4_row = {
  row_benchmark : string;
  row_kind : Dfg.op_kind;
  obf_vs_area : float;
  obf_vs_power : float;
  cd_opt_vs_area : float;
  cd_opt_vs_power : float;
  cd_heur_vs_area : float;
  cd_heur_vs_power : float;
}

let collect_ratios results pick_security pick_baseline =
  List.concat_map
    (fun r ->
      Array.to_list r.combos
      |> List.map (fun combo -> ratio_vs (pick_security r combo) (pick_baseline combo)))
    results

let fig4_row ~benchmark kind results =
  match results with
  | [] -> None
  | _ ->
    let mean_of pick_security pick_baseline =
      Stats.mean (collect_ratios results pick_security pick_baseline)
    in
    Some
      {
        row_benchmark = benchmark;
        row_kind = kind;
        obf_vs_area = mean_of (fun _ c -> c.e_obf) (fun c -> c.e_area);
        obf_vs_power = mean_of (fun _ c -> c.e_obf) (fun c -> c.e_power);
        cd_opt_vs_area = mean_of (fun r _ -> r.e_codesign_optimal) (fun c -> c.e_area);
        cd_opt_vs_power = mean_of (fun r _ -> r.e_codesign_optimal) (fun c -> c.e_power);
        cd_heur_vs_area = mean_of (fun r _ -> r.e_codesign_heuristic) (fun c -> c.e_area);
        cd_heur_vs_power = mean_of (fun r _ -> r.e_codesign_heuristic) (fun c -> c.e_power);
      }

type fig5_cell = {
  cell_label : string;
  f5_obf_vs_area : float;
  f5_obf_vs_power : float;
  f5_cd_vs_area : float;
  f5_cd_vs_power : float;
}

let fig5_cells pooled =
  let cell label keep =
    let results = List.filter keep pooled in
    let mean_of pick_security pick_baseline =
      Stats.mean (collect_ratios results pick_security pick_baseline)
    in
    {
      cell_label = label;
      f5_obf_vs_area = mean_of (fun _ c -> c.e_obf) (fun c -> c.e_area);
      f5_obf_vs_power = mean_of (fun _ c -> c.e_obf) (fun c -> c.e_power);
      f5_cd_vs_area = mean_of (fun r _ -> r.e_codesign_heuristic) (fun c -> c.e_area);
      f5_cd_vs_power = mean_of (fun r _ -> r.e_codesign_heuristic) (fun c -> c.e_power);
    }
  in
  [
    cell "1 FU" (fun r -> r.locked_fu_count = 1);
    cell "2 FUs" (fun r -> r.locked_fu_count = 2);
    cell "3 FUs" (fun r -> r.locked_fu_count = 3);
    cell "1 Lock Inp." (fun r -> r.minterms_per_fu = 1);
    cell "2 Lock Inp." (fun r -> r.minterms_per_fu = 2);
    cell "3 Lock Inp." (fun r -> r.minterms_per_fu = 3);
    cell "Avg." (fun _ -> true);
  ]

type overhead_result = {
  ov_benchmark : string;
  area_registers : int;
  obf_registers : float;
  cd_registers : float;
  power_switching : float;
  obf_switching : float;
  cd_switching : float;
}

let overhead ?(seed = 11) ?(combos_per_config = 10) ctx =
  let obf_regs = ref [] and obf_sw = ref [] in
  let cd_regs = ref [] and cd_sw = ref [] in
  let note_binding regs sw ~subject config binding =
    assert_lint ~config ~subject ctx.schedule ctx.allocation binding;
    regs := float_of_int (Rb_hls.Registers.count binding) :: !regs;
    sw := Rb_hls.Switching.rate binding ctx.profile :: !sw
  in
  let run_kind kind =
    let candidates = candidates_for ctx kind in
    let n_cands = Array.length candidates in
    let fus = Allocation.fu_ids ctx.allocation kind in
    if n_cands > 0 && fus <> [] then
      List.iter
        (fun locked_fu_count ->
          if locked_fu_count <= List.length fus then
            List.iter
              (fun minterms_per_fu ->
                if minterms_per_fu <= n_cands then begin
                  let locked_fus = List.filteri (fun i _ -> i < locked_fu_count) fus in
                  let rng =
                    Rng.create
                      (seed + (100 * locked_fu_count) + minterms_per_fu
                       + Hashtbl.hash ctx.benchmark)
                  in
                  (* Obfuscation-aware binding over a small combination
                     subsample. *)
                  for _ = 1 to combos_per_config do
                    let locks =
                      List.map
                        (fun fu ->
                          let subset = random_subset rng n_cands minterms_per_fu in
                          (fu, Array.to_list (Array.map (fun c -> candidates.(c)) subset)))
                        locked_fus
                    in
                    let config =
                      Config.make ~scheme:Rb_locking.Scheme.Sfll_rem ~locks
                    in
                    let binding =
                      Obf_binding.bind ctx.k config ctx.schedule ctx.allocation
                    in
                    note_binding obf_regs obf_sw
                      ~subject:(ctx.benchmark ^ "/overhead/obf-aware") config binding
                  done;
                  (* Co-design heuristic binding, one per configuration. *)
                  let spec =
                    {
                      Codesign.scheme = Rb_locking.Scheme.Sfll_rem;
                      locked_fus;
                      minterms_per_fu;
                      candidates;
                    }
                  in
                  let heur = Codesign.heuristic ctx.k ctx.schedule ctx.allocation spec in
                  note_binding cd_regs cd_sw
                    ~subject:(ctx.benchmark ^ "/overhead/codesign") heur.Codesign.config
                    heur.Codesign.binding
                end)
              [ 1; 2; 3 ])
        [ 1; 2; 3 ]
  in
  run_kind Dfg.Add;
  run_kind Dfg.Mul;
  {
    ov_benchmark = ctx.benchmark;
    area_registers = Rb_hls.Registers.count ctx.area_binding;
    obf_registers = Stats.mean !obf_regs;
    cd_registers = Stats.mean !cd_regs;
    power_switching = Rb_hls.Switching.rate ctx.power_binding ctx.profile;
    obf_switching = Stats.mean !obf_sw;
    cd_switching = Stats.mean !cd_sw;
  }

type quality_result = {
  q_benchmark : string;
  q_kind : Dfg.op_kind;
  base_events : int;
  base_corrupted_samples : int;
  base_max_burst : int;
  secure_events : int;
  secure_corrupted_samples : int;
  secure_max_burst : int;
  samples : int;
}

let quality ?(locked_fus = 2) ?(minterms_per_fu = 2) ~trace ctx kind =
  let candidates = candidates_for ctx kind in
  let fus = Allocation.fu_ids ctx.allocation kind in
  if fus = [] || Array.length candidates = 0 then None
  else begin
    let spec =
      {
        Codesign.scheme = Rb_locking.Scheme.Sfll_rem;
        locked_fus = List.filteri (fun i _ -> i < locked_fus) fus;
        minterms_per_fu = min minterms_per_fu (Array.length candidates);
        candidates;
      }
    in
    let solution = Codesign.heuristic ctx.k ctx.schedule ctx.allocation spec in
    let config = solution.Codesign.config in
    assert_lint ~config ~candidates ~subject:(ctx.benchmark ^ "/quality/codesign")
      ctx.schedule ctx.allocation solution.Codesign.binding;
    let measure binding =
      Rb_sim.Exec.application_errors ctx.schedule trace
        ~fu_of_op:(Binding.fu_array binding) ~config
    in
    let base = measure ctx.area_binding in
    let secure = measure solution.Codesign.binding in
    Some
      {
        q_benchmark = ctx.benchmark;
        q_kind = kind;
        base_events = base.Rb_sim.Exec.error_events;
        base_corrupted_samples = base.Rb_sim.Exec.corrupted_samples;
        base_max_burst = base.Rb_sim.Exec.max_consecutive_cycles;
        secure_events = secure.Rb_sim.Exec.error_events;
        secure_corrupted_samples = secure.Rb_sim.Exec.corrupted_samples;
        secure_max_burst = secure.Rb_sim.Exec.max_consecutive_cycles;
        samples = base.Rb_sim.Exec.samples;
      }
  end

type post_binding_result = {
  pb_benchmark : string;
  pb_kind : Dfg.op_kind;
  codesign_errors : int;
  codesign_minterms : int;
  codesign_lambda : float;
  post_minterms : int option;
  post_errors : int;
  post_lambda : float;
}

let post_binding ?(key_bits = 32) ?(locked_fus = 2) ?(minterms_per_fu = 2) ctx kind =
  let candidates = candidates_for ctx kind in
  let fus = Allocation.fu_ids ctx.allocation kind in
  if fus = [] || Array.length candidates < minterms_per_fu then None
  else begin
    let locked = List.filteri (fun i _ -> i < locked_fus) fus in
    let spec =
      { Codesign.scheme = Rb_locking.Scheme.Sfll_rem; locked_fus = locked;
        minterms_per_fu; candidates }
    in
    let solution = Codesign.heuristic ctx.k ctx.schedule ctx.allocation spec in
    assert_lint ~config:solution.Codesign.config ~candidates
      ~subject:(ctx.benchmark ^ "/post-binding/codesign") ctx.schedule ctx.allocation
      solution.Codesign.binding;
    let input_bits = 2 * Rb_dfg.Word.width in
    let lambda_at minterms =
      Rb_locking.Resilience.lambda_minterms ~key_bits ~correct_keys:1 ~input_bits
        ~minterms
    in
    (* Post-binding locking on the area-aware design: per locked FU,
       greedily add the candidate minterm with the most occurrences
       over that FU's bound operations — the best a post-binding
       designer can do from the same candidate list C that co-design
       drew from. *)
    let per_fu_pool =
      List.map
        (fun fu ->
          let count_on_fu m =
            List.fold_left
              (fun acc op -> acc + Kmatrix.count ctx.k m op)
              0 (Binding.ops_on_fu ctx.area_binding fu)
          in
          Array.to_list candidates
          |> List.map (fun m -> (m, count_on_fu m))
          |> List.sort (fun (m1, c1) (m2, c2) ->
                 match Int.compare c2 c1 with 0 -> Minterm.compare m1 m2 | c -> c))
        locked
    in
    (* lock the top-h minterms of each FU's own pool; grow h until the
       co-design error level is met or the pools run dry *)
    let errors_at h =
      List.fold_left
        (fun acc pool ->
          pool
          |> List.filteri (fun i _ -> i < h)
          |> List.fold_left (fun acc (_, c) -> acc + c) acc)
        0 per_fu_pool
    in
    let rec grow h =
      let errors = errors_at h in
      let exhausted = List.for_all (fun pool -> h >= List.length pool) per_fu_pool in
      if errors >= solution.Codesign.errors then (Some h, errors)
      else if exhausted then (None, errors)
      else grow (h + 1)
    in
    let post_minterms, post_errors = grow 1 in
    Some
      {
        pb_benchmark = ctx.benchmark;
        pb_kind = kind;
        codesign_errors = solution.Codesign.errors;
        codesign_minterms = minterms_per_fu;
        codesign_lambda = lambda_at minterms_per_fu;
        post_minterms;
        post_errors;
        post_lambda = lambda_at (match post_minterms with Some h -> h | None ->
          List.fold_left (fun acc pool -> max acc (List.length pool)) 1 per_fu_pool);
      }
  end

(* ------------------------------------------------------------- suites *)

type sweep_key = { sk_benchmark : string; sk_kind : Dfg.op_kind }

let both_kinds ctxs =
  List.concat_map (fun ctx -> [ (ctx, Dfg.Add); (ctx, Dfg.Mul) ]) ctxs

let sweep_suite ?pool ?journal ?seed ?max_combos_per_config ?max_optimal_assignments
    ?fu_counts ?minterm_counts ctxs =
  (* One task per (benchmark, kind); inside a worker the nested chunk
     map of [sweep] degrades to inline evaluation, so the same pool
     serves both levels without deadlock. The journal is shared — its
     own mutex serializes records from concurrent sweeps. *)
  pool_map_list pool
    (fun (ctx, kind) ->
      ( { sk_benchmark = ctx.benchmark; sk_kind = kind },
        sweep ?pool ?journal ?seed ?max_combos_per_config ?max_optimal_assignments
          ?fu_counts ?minterm_counts ctx kind ))
    (both_kinds ctxs)

let fig4_rows suite =
  List.filter_map
    (fun (key, results) -> fig4_row ~benchmark:key.sk_benchmark key.sk_kind results)
    suite

let pooled_results suite = List.concat_map snd suite

let concentrations ctxs =
  List.concat_map
    (fun ctx ->
      List.concat_map
        (fun kind ->
          Array.to_list (candidates_for ctx kind)
          |> List.map (fun m -> Kmatrix.op_concentration ctx.k m))
        [ Dfg.Add; Dfg.Mul ])
    ctxs

type reduced_run = {
  rr_benchmark : string;
  rr_kind : Dfg.op_kind;
  rr_locked_fu_count : int;
  rr_minterms_per_fu : int;
  rr_candidates_used : int;
}

let reduced_optimal_runs ?(full_candidates = 10) suite =
  List.concat_map
    (fun (key, results) ->
      List.filter_map
        (fun r ->
          if r.optimal_candidates_used < full_candidates then
            Some
              {
                rr_benchmark = key.sk_benchmark;
                rr_kind = key.sk_kind;
                rr_locked_fu_count = r.locked_fu_count;
                rr_minterms_per_fu = r.minterms_per_fu;
                rr_candidates_used = r.optimal_candidates_used;
              }
          else None)
        results)
    suite

type headline_summary = {
  hl_obf_mean : float;
  hl_cd_mean : float;
  hl_gap_configs : int;
  hl_gap_mean : float;
  hl_gap_worst : float;
}

let headline ?(full_candidates = 10) suite =
  let obf = ref [] and cd = ref [] and gaps = ref [] in
  List.iter
    (fun (key, results) ->
      (match fig4_row ~benchmark:key.sk_benchmark key.sk_kind results with
       | None -> ()
       | Some row ->
         obf := row.obf_vs_area :: row.obf_vs_power :: !obf;
         cd := row.cd_heur_vs_area :: row.cd_heur_vs_power :: !cd);
      List.iter
        (fun r ->
          (* heuristic vs optimal, only where optimal searched the full
             candidate list *)
          if r.optimal_candidates_used = full_candidates then begin
            let opt = float_of_int r.e_codesign_optimal in
            let heur = float_of_int r.e_codesign_heuristic in
            if opt > 0.0 then gaps := ((opt -. heur) /. opt *. 100.0) :: !gaps
          end)
        results)
    suite;
  {
    hl_obf_mean = Stats.mean !obf;
    hl_cd_mean = Stats.mean !cd;
    hl_gap_configs = List.length !gaps;
    hl_gap_mean = Stats.mean !gaps;
    hl_gap_worst = Stats.maximum !gaps;
  }

let overhead_suite ?pool ?seed ?combos_per_config ctxs =
  pool_map_list pool (fun ctx -> overhead ?seed ?combos_per_config ctx) ctxs

let quality_suite ?pool ?locked_fus ?minterms_per_fu ~trace_of ctxs =
  pool_map_list pool
    (fun (ctx, kind) ->
      quality ?locked_fus ?minterms_per_fu ~trace:(trace_of ctx) ctx kind)
    (both_kinds ctxs)
  |> List.filter_map Fun.id

let post_binding_suite ?pool ?key_bits ?locked_fus ?minterms_per_fu ctxs =
  pool_map_list pool
    (fun (ctx, kind) -> post_binding ?key_bits ?locked_fus ?minterms_per_fu ctx kind)
    (both_kinds ctxs)
  |> List.filter_map Fun.id
