module Binder = Rb_hls.Binder
module Config = Rb_locking.Config
module Minterm = Rb_dfg.Minterm

module Obf = struct
  let name = "obf"
  let description = "obfuscation-aware binding for a fixed lock (Sec. IV)"
  let bind (input : Binder.input) =
    { Binder.binding = Obf_binding.bind input.k input.config input.schedule input.allocation;
      config = input.config }
end

module Codesign_heuristic = struct
  let name = "codesign"
  let description = "binding-obfuscation co-design, P-time heuristic (Sec. V)"

  let bind (input : Binder.input) =
    let locked_fus = Config.locked_fus input.config in
    if locked_fus = [] then
      invalid_arg "codesign binder: input.config locks no FU";
    let minterms_per_fu =
      List.fold_left
        (fun acc fu -> max acc (Minterm.Set.cardinal (Config.minterms_of input.config fu)))
        1 locked_fus
    in
    let spec =
      { Codesign.scheme = Config.scheme input.config;
        locked_fus;
        minterms_per_fu = min minterms_per_fu (Array.length input.candidates);
        candidates = input.candidates }
    in
    let solution = Codesign.heuristic input.k input.schedule input.allocation spec in
    { Binder.binding = solution.Codesign.binding; config = solution.Codesign.config }
end

let registered = ref false
let registered_mutex = Mutex.create ()

let ensure_registered () =
  Mutex.lock registered_mutex;
  let fresh = not !registered in
  registered := true;
  Mutex.unlock registered_mutex;
  if fresh then begin
    Binder.register (module Obf);
    Binder.register (module Codesign_heuristic)
  end
