(** The security-aware binders behind the {!Rb_hls.Binder} registry.

    [Rb_hls.Binder] registers the two baselines itself; this module
    contributes the paper's algorithms:

    - ["obf"] — obfuscation-aware binding (Sec. IV) for the fixed
      locking configuration in [input.config];
    - ["codesign"] — the P-time co-design heuristic (Sec. V): re-derives
      the search spec (locked FUs, per-FU budget) from the shape of
      [input.config], searches [input.candidates], and returns both the
      chosen configuration and its binding.

    Call {!ensure_registered} once at startup before resolving either
    name; module-initializer registration alone is not reliable because
    the linker may drop an otherwise-unreferenced module. *)

module Obf : Rb_hls.Binder.S
module Codesign_heuristic : Rb_hls.Binder.S

val ensure_registered : unit -> unit
(** Register both binders; idempotent, safe to call from multiple
    entry points. *)
