(** Experiment drivers regenerating the paper's evaluation (Sec. VI).

    The protocol mirrors the paper: for every benchmark, enumerate all
    locking configurations of {1,2,3} locked FUs x {1,2,3} locked
    inputs per FU; for each configuration, build a locked circuit for
    every combination of the candidate locked inputs under 1)
    obfuscation-aware, 2) co-design (optimal and P-time heuristic), 3)
    area-aware and 4) power-aware binding; and compare application
    errors (Eqn. 2) of each security-aware approach against each
    baseline with the identical locking configuration. Adders and
    multipliers are treated separately.

    Deviations from the paper, all reported in the result records
    rather than silently applied: combination spaces larger than
    [max_combos_per_config] are sampled (deterministically); optimal
    co-design spaces larger than [max_optimal_assignments] are re-run
    on a shortened candidate list; ratios floor a zero-error baseline
    at one error event.

    Every binding and locking configuration these drivers generate is
    run through [Rb_lint] before being measured; a rule violation
    raises [Rb_lint.Lint.Lint_error] instead of silently skewing a
    figure. *)

module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm

(** Everything derived once per benchmark. *)
type context = {
  benchmark : string;
  schedule : Rb_sched.Schedule.t;
  allocation : Rb_hls.Allocation.t;
  k : Rb_sim.Kmatrix.t;
  profile : Rb_hls.Profile.t;
  area_binding : Rb_hls.Binding.t;
  power_binding : Rb_hls.Binding.t;
  candidates_add : Minterm.t array;  (** top candidates among add ops *)
  candidates_mul : Minterm.t array;  (** top candidates among mul ops *)
}

val context :
  ?n_candidates:int -> name:string -> Rb_sched.Schedule.t -> Rb_sim.Trace.t -> context
(** Build the per-benchmark context ([n_candidates] defaults to the
    paper's 10 most common inputs, per operation kind). *)

val candidates_for : context -> Dfg.op_kind -> Minterm.t array

(** Eqn. 2 errors of one candidate-minterm assignment under the three
    per-combination binders. *)
type combo_errors = { e_area : int; e_power : int; e_obf : int }

type config_result = {
  kind : Dfg.op_kind;
  locked_fu_count : int;
  minterms_per_fu : int;
  combos_total : int;  (** full assignment-space size *)
  combos : combo_errors array;  (** evaluated assignments (all, or a sample) *)
  sampled : bool;  (** true when [combos] is a random sample *)
  e_codesign_optimal : int;  (** Eqn. 2 errors of optimal co-design *)
  optimal_candidates_used : int;
      (** candidate-list length the optimal run actually searched;
          smaller than the full list when the space was reduced *)
  e_codesign_heuristic : int;
  heuristic_searched : int;  (** assignments scored by the heuristic *)
}

val sweep :
  ?pool:Rb_util.Pool.t ->
  ?journal:Rb_util.Checkpoint.t ->
  ?seed:int ->
  ?max_combos_per_config:int ->
  ?max_optimal_assignments:int ->
  ?fu_counts:int list ->
  ?minterm_counts:int list ->
  context ->
  Dfg.op_kind ->
  config_result list
(** Run the full configuration sweep for one operation kind. Defaults:
    seed 7, 2000 combinations per configuration, 300_000 optimal
    assignments, FU counts and minterm counts [\[1;2;3\]]. Returns one
    result per feasible configuration (infeasible ones — more locked
    FUs than allocated, fewer candidates than the budget — are
    skipped).

    With [?pool], combination evaluation is fanned out in fixed-size
    chunks of the (lexicographically ordered) combination space; every
    sampled combination derives its RNG from the seed and its own
    index, so the result is byte-identical for any worker count,
    including [None].

    Chunk evaluation is fault-isolated: a chunk whose task raises is
    retried in place (twice), and only a chunk that keeps failing
    aborts the sweep — after every other chunk has completed. With
    [?journal], each completed chunk is recorded under a key built
    from the seed, benchmark, kind, configuration and chunk index, and
    a resumed run replays journaled chunks instead of recomputing them
    (falling back to recomputation on any decode mismatch) — the
    returned results are byte-identical either way. *)

val ratio_vs : int -> int -> float
(** [ratio_vs security baseline] with the zero-baseline floor. *)

(** Per-benchmark Fig. 4 aggregate: mean error-increase ratios. *)
type fig4_row = {
  row_benchmark : string;
  row_kind : Dfg.op_kind;
  obf_vs_area : float;
  obf_vs_power : float;
  cd_opt_vs_area : float;
  cd_opt_vs_power : float;
  cd_heur_vs_area : float;
  cd_heur_vs_power : float;
}

val fig4_row : benchmark:string -> Dfg.op_kind -> config_result list -> fig4_row option
(** None when the kind has no feasible configuration (e.g. multipliers
    in ecb_enc4). *)

(** Fig. 5 cell: ratios aggregated with one locking parameter fixed. *)
type fig5_cell = {
  cell_label : string;
  f5_obf_vs_area : float;
  f5_obf_vs_power : float;
  f5_cd_vs_area : float;
  f5_cd_vs_power : float;
}

val fig5_cells : config_result list -> fig5_cell list
(** Aggregate a pooled result list (all benchmarks and kinds) into the
    paper's seven x-axis groups: 1/2/3 FUs, 1/2/3 locked inputs, and
    the overall average. Co-design ratios use the P-time heuristic, as
    in the paper's Fig. 5. *)

(** Fig. 6: overhead of security-aware binding. *)
type overhead_result = {
  ov_benchmark : string;
  area_registers : int;  (** register count under area-aware binding *)
  obf_registers : float;  (** mean register count, obfuscation-aware *)
  cd_registers : float;  (** mean register count, co-design heuristic *)
  power_switching : float;  (** switching rate under power-aware binding *)
  obf_switching : float;
  cd_switching : float;
}

val overhead :
  ?seed:int -> ?combos_per_config:int -> context -> overhead_result
(** Average register count and switching rate of the security-aware
    binders over the configuration sweep (a small per-configuration
    combination subsample, default 10, since overhead varies little
    across combinations), against the baselines' values. *)

(** Error quality (Sec. III): measured wrong-key corruption of one
    co-designed locking configuration replayed through the trace
    simulator under a baseline binding and under the co-designed
    binding. *)
type quality_result = {
  q_benchmark : string;
  q_kind : Dfg.op_kind;
  base_events : int;  (** error events under area-aware binding *)
  base_corrupted_samples : int;
  base_max_burst : int;  (** longest consecutive-cycle injection run *)
  secure_events : int;  (** same metrics under the co-designed binding *)
  secure_corrupted_samples : int;
  secure_max_burst : int;
  samples : int;
}

val quality :
  ?locked_fus:int ->
  ?minterms_per_fu:int ->
  trace:Rb_sim.Trace.t ->
  context ->
  Dfg.op_kind ->
  quality_result option
(** Co-design a configuration (defaults 2 FUs x 2 minterms, shrunk to
    what the allocation and candidate list allow) and measure both
    bindings on the full trace. [None] when the kind has no FUs or no
    candidates. *)

(** The abstract's closing claim, quantified: "locking applied
    post-binding could not achieve a high application error rate and
    SAT resilience simultaneously". Fix a key budget; co-design
    reaches an error level with few locked minterms (high Eqn. 1
    resilience); locking the already-bound (area-aware) design needs
    many more minterms to match it, collapsing its resilience. *)
type post_binding_result = {
  pb_benchmark : string;
  pb_kind : Dfg.op_kind;
  codesign_errors : int;  (** error level set by co-design *)
  codesign_minterms : int;  (** locked minterms per FU it spent *)
  codesign_lambda : float;  (** Eqn. 1 at the fixed key budget *)
  post_minterms : int option;
      (** minterms per FU post-binding locking needed to match the
          error level ([None] if unreachable even after locking the
          whole candidate list on every locked FU) *)
  post_errors : int;  (** errors it reached *)
  post_lambda : float;  (** Eqn. 1 resilience it was left with *)
}

val post_binding :
  ?key_bits:int ->
  ?locked_fus:int ->
  ?minterms_per_fu:int ->
  context ->
  Dfg.op_kind ->
  post_binding_result option
(** Defaults: 32-bit key budget per FU, 2 locked FUs, 2 minterms per
    FU for co-design. Post-binding locking gets the best greedy choice
    from the same candidate list: for each locked FU of the area-aware
    binding, add the candidate with the most occurrences over that
    FU's operations, until the co-design error level is met. *)

(** {2 Suites}

    Whole-evaluation drivers: pure compute over a list of benchmark
    contexts, fanned out over an optional {!Rb_util.Pool}. All suites
    hold the determinism contract — output is a pure function of the
    inputs and seeds, independent of [?pool] and its worker count.
    Rendering lives in {!Render}. *)

(** Identifies one sweep within a suite. *)
type sweep_key = { sk_benchmark : string; sk_kind : Dfg.op_kind }

val sweep_suite :
  ?pool:Rb_util.Pool.t ->
  ?journal:Rb_util.Checkpoint.t ->
  ?seed:int ->
  ?max_combos_per_config:int ->
  ?max_optimal_assignments:int ->
  ?fu_counts:int list ->
  ?minterm_counts:int list ->
  context list ->
  (sweep_key * config_result list) list
(** {!sweep} over every (benchmark, kind) pair, in benchmark order
    with Add before Mul. One pool task per pair; the nested
    combination-chunk fan-out of {!sweep} runs inline inside those
    tasks. [?journal] is shared across the whole suite — the sweep
    keys disambiguate benchmarks and kinds. *)

val fig4_rows : (sweep_key * config_result list) list -> fig4_row list
(** The {!fig4_row} of every sweep that has at least one feasible
    configuration, in suite order. *)

val pooled_results : (sweep_key * config_result list) list -> config_result list
(** All configuration results of a suite flattened, e.g. for
    {!fig5_cells}. *)

val concentrations : context list -> float list
(** Candidate op-concentration of every candidate minterm across the
    suite (the workload statistic quoted next to Fig. 4). *)

(** One optimal co-design run that searched a shortened candidate
    list (disclosed alongside Fig. 5). *)
type reduced_run = {
  rr_benchmark : string;
  rr_kind : Dfg.op_kind;
  rr_locked_fu_count : int;
  rr_minterms_per_fu : int;
  rr_candidates_used : int;
}

val reduced_optimal_runs :
  ?full_candidates:int -> (sweep_key * config_result list) list -> reduced_run list
(** Configurations whose optimal run used fewer than [full_candidates]
    (default 10) candidates. *)

(** The paper-abstract numbers, computed from a sweep suite. *)
type headline_summary = {
  hl_obf_mean : float;  (** mean obf-aware error increase (paper: 26x) *)
  hl_cd_mean : float;  (** mean co-design error increase (paper: 99x) *)
  hl_gap_configs : int;  (** full-search configurations compared *)
  hl_gap_mean : float;  (** mean heuristic-vs-optimal gap, percent *)
  hl_gap_worst : float;  (** worst gap, percent (paper: < 0.5%) *)
}

val headline :
  ?full_candidates:int -> (sweep_key * config_result list) list -> headline_summary

val overhead_suite :
  ?pool:Rb_util.Pool.t ->
  ?seed:int ->
  ?combos_per_config:int ->
  context list ->
  overhead_result list
(** {!overhead} for every context, one pool task each. *)

val quality_suite :
  ?pool:Rb_util.Pool.t ->
  ?locked_fus:int ->
  ?minterms_per_fu:int ->
  trace_of:(context -> Rb_sim.Trace.t) ->
  context list ->
  quality_result list
(** {!quality} over every (benchmark, kind) pair; infeasible pairs are
    dropped. [trace_of] supplies each benchmark's replay trace. *)

val post_binding_suite :
  ?pool:Rb_util.Pool.t ->
  ?key_bits:int ->
  ?locked_fus:int ->
  ?minterms_per_fu:int ->
  context list ->
  post_binding_result list
(** {!post_binding} over every (benchmark, kind) pair. *)
