(** The rendering half of the experiment layer.

    {!Experiments} and {!Ablation} compute structured records (fanned
    out over an {!Rb_util.Pool} when one is supplied); the functions
    here turn those record lists into the text tables the bench
    harness prints. Every function is a pure string producer, so the
    determinism contract can be tested end to end: rendering the
    records of a [--jobs n] run yields bytes identical to a [--jobs 1]
    run. *)

val fmt_ratio : float -> string
(** ["12.3x"]. *)

val fig4 :
  rows:Experiments.fig4_row list -> concentrations:float list -> string
(** The two Fig. 4 tables (with the running average rows) plus the
    paper-reference and op-concentration notes. *)

val fig5 :
  cells:Experiments.fig5_cell list -> reduced:Experiments.reduced_run list -> string
(** The Fig. 5 table plus the reduced-candidate-list disclosure. *)

val fig6 : Experiments.overhead_result list -> string
(** Register and switching overhead tables plus the paper-reference
    note. *)

val headline : Experiments.headline_summary -> string

val quality : Experiments.quality_result list -> string

val post_binding : Experiments.post_binding_result list -> string

val ablation :
  strategies:(string * Rb_dfg.Dfg.op_kind * Ablation.strategy_row list) list ->
  generalization:(string * Rb_dfg.Dfg.op_kind * Ablation.generalization_row) list ->
  budget_title:string ->
  budget:Ablation.budget_row list ->
  sensitivity_title:string ->
  sensitivity:Ablation.sensitivity_row list ->
  string
(** All four ablation tables with their interleaved commentary. *)
