(* The rendering half of the experiment layer: turns the record lists
   the Experiments/Ablation drivers compute into the text tables the
   bench harness prints. Pure string producers — no printing and no
   computation beyond presentation aggregation (averages of series the
   compute half already produced). *)

module Dfg = Rb_dfg.Dfg
module Table = Rb_util.Table
module Stats = Rb_util.Stats
module E = Experiments
module A = Ablation

let fmt_ratio r = Printf.sprintf "%.1fx" r

let fig4 ~rows ~concentrations =
  let top =
    Table.create ~title:"Fig. 4 (top): obfuscation-aware binding"
      ~columns:[ "vs area"; "vs power"; "log bar (vs area)" ]
  in
  let bottom =
    Table.create
      ~title:"Fig. 4 (bottom): binding-obfuscation co-design (optimal / P-time heuristic)"
      ~columns:
        [ "opt vs area"; "opt vs power"; "heur vs area"; "heur vs power";
          "log bar (heur vs area)" ]
  in
  let all_obf_area = ref [] and all_obf_power = ref [] in
  let all_cd_area = ref [] and all_cd_power = ref [] in
  List.iter
    (fun (row : E.fig4_row) ->
      let label =
        Printf.sprintf "%s/%s" row.E.row_benchmark (Dfg.kind_label row.E.row_kind)
      in
      all_obf_area := row.E.obf_vs_area :: !all_obf_area;
      all_obf_power := row.E.obf_vs_power :: !all_obf_power;
      all_cd_area := row.E.cd_heur_vs_area :: !all_cd_area;
      all_cd_power := row.E.cd_heur_vs_power :: !all_cd_power;
      Table.add_text_row top ~label
        ~cells:
          [
            fmt_ratio row.E.obf_vs_area;
            fmt_ratio row.E.obf_vs_power;
            Table.log_bar row.E.obf_vs_area;
          ];
      Table.add_text_row bottom ~label
        ~cells:
          [
            fmt_ratio row.E.cd_opt_vs_area;
            fmt_ratio row.E.cd_opt_vs_power;
            fmt_ratio row.E.cd_heur_vs_area;
            fmt_ratio row.E.cd_heur_vs_power;
            Table.log_bar row.E.cd_heur_vs_area;
          ])
    rows;
  Table.add_text_row top ~label:"Avg."
    ~cells:
      [
        fmt_ratio (Stats.mean !all_obf_area);
        fmt_ratio (Stats.mean !all_obf_power);
        Table.log_bar (Stats.mean !all_obf_area);
      ];
  Table.add_text_row bottom ~label:"Avg."
    ~cells:
      [
        "-"; "-";
        fmt_ratio (Stats.mean !all_cd_area);
        fmt_ratio (Stats.mean !all_cd_power);
        Table.log_bar (Stats.mean !all_cd_area);
      ];
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Table.render top);
  Buffer.add_string buf "\n\n";
  Buffer.add_string buf (Table.render bottom);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    "\nPaper reference: obf-aware 22x (area) / 29x (power); co-design 82x / 115x.\n\
     No multipliers in ecb_enc4 (as in the paper). Combination spaces above\n\
     2000 are deterministically sampled; optimal co-design above 200k\n\
     assignments re-runs on a shortened candidate list (disclosed in the fig5\n\
     section).\n";
  Buffer.add_string buf
    (Printf.sprintf
       "Candidate op-concentration across the suite: mean %.2f, median %.2f\n\
        (1.0 = single-operation minterm; see EXPERIMENTS.md - this statistic is\n\
        what separates our ratio magnitudes from the paper's MediaBench runs).\n"
       (Stats.mean concentrations) (Stats.median concentrations));
  Buffer.contents buf

let fig5 ~cells ~reduced =
  let table =
    Table.create ~title:"mean error-increase ratio"
      ~columns:
        [ "obf vs area"; "obf vs power"; "co-d vs area"; "co-d vs power";
          "log bar (co-d/area)" ]
  in
  List.iter
    (fun (cell : E.fig5_cell) ->
      Table.add_text_row table ~label:cell.E.cell_label
        ~cells:
          [
            fmt_ratio cell.E.f5_obf_vs_area;
            fmt_ratio cell.E.f5_obf_vs_power;
            fmt_ratio cell.E.f5_cd_vs_area;
            fmt_ratio cell.E.f5_cd_vs_power;
            Table.log_bar cell.E.f5_cd_vs_area;
          ])
    cells;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Table.render table);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf
       "\nPaper reference: consistently 10-150x across configurations.\n\
        Optimal co-design used a shortened candidate list on %d configuration\n\
        runs (exact search above the 200k-assignment cap):\n"
       (List.length reduced));
  List.iter
    (fun (rr : E.reduced_run) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s/%s L=%d m=%d: |C|=%d\n" rr.E.rr_benchmark
           (Dfg.kind_label rr.E.rr_kind) rr.E.rr_locked_fu_count
           rr.E.rr_minterms_per_fu rr.E.rr_candidates_used))
    reduced;
  Buffer.contents buf

let fig6 overheads =
  let regs =
    Table.create ~title:"registers (distributed register-file model)"
      ~columns:
        [ "area-aware"; "obf-aware"; "co-design"; "increase (obf)"; "increase (co-d)" ]
  in
  let sw =
    Table.create ~title:"switching rate (input-port toggle fraction)"
      ~columns:
        [ "power-aware"; "obf-aware"; "co-design"; "increase (obf)"; "increase (co-d)" ]
  in
  let dr_obf = ref [] and dr_cd = ref [] and ds_obf = ref [] and ds_cd = ref [] in
  List.iter
    (fun (ov : E.overhead_result) ->
      let base_r = float_of_int ov.E.area_registers in
      dr_obf := (ov.E.obf_registers -. base_r) :: !dr_obf;
      dr_cd := (ov.E.cd_registers -. base_r) :: !dr_cd;
      ds_obf := (ov.E.obf_switching -. ov.E.power_switching) :: !ds_obf;
      ds_cd := (ov.E.cd_switching -. ov.E.power_switching) :: !ds_cd;
      Table.add_text_row regs ~label:ov.E.ov_benchmark
        ~cells:
          [
            string_of_int ov.E.area_registers;
            Printf.sprintf "%.1f" ov.E.obf_registers;
            Printf.sprintf "%.1f" ov.E.cd_registers;
            Printf.sprintf "%+.1f" (ov.E.obf_registers -. base_r);
            Printf.sprintf "%+.1f" (ov.E.cd_registers -. base_r);
          ];
      Table.add_text_row sw ~label:ov.E.ov_benchmark
        ~cells:
          [
            Printf.sprintf "%.3f" ov.E.power_switching;
            Printf.sprintf "%.3f" ov.E.obf_switching;
            Printf.sprintf "%.3f" ov.E.cd_switching;
            Printf.sprintf "%+.3f" (ov.E.obf_switching -. ov.E.power_switching);
            Printf.sprintf "%+.3f" (ov.E.cd_switching -. ov.E.power_switching);
          ])
    overheads;
  Table.add_text_row regs ~label:"Avg."
    ~cells:
      [ "-"; "-"; "-"; Printf.sprintf "%+.2f" (Stats.mean !dr_obf);
        Printf.sprintf "%+.2f" (Stats.mean !dr_cd) ];
  Table.add_text_row sw ~label:"Avg."
    ~cells:
      [ "-"; "-"; "-"; Printf.sprintf "%+.3f" (Stats.mean !ds_obf);
        Printf.sprintf "%+.3f" (Stats.mean !ds_cd) ];
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Table.render regs);
  Buffer.add_string buf "\n\n";
  Buffer.add_string buf (Table.render sw);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    "\nPaper reference: ~+4.7 registers vs area-aware, ~+0.03 switching rate vs\n\
     power-aware. Our register deltas are smaller in absolute terms (smaller\n\
     8-bit kernels; see EXPERIMENTS.md); the reproduced claim is the shape -\n\
     small positive overhead.\n";
  Buffer.contents buf

let headline (h : E.headline_summary) =
  Printf.sprintf
    "obfuscation-aware binding error increase (mean):   %.1fx   (paper: 26x)\n\
     binding-obfuscation co-design error increase:      %.1fx   (paper: 99x)\n\
     heuristic vs optimal degradation over %d full-search configurations:\n\
    \  mean %.3f%%, worst %.3f%%   (paper: < 0.5%%)\n"
    h.E.hl_obf_mean h.E.hl_cd_mean h.E.hl_gap_configs h.E.hl_gap_mean
    h.E.hl_gap_worst

let quality results =
  let table =
    Table.create ~title:"corruption measured over the full typical trace"
      ~columns:
        [ "events (base)"; "events (secure)"; "bad samples (base)"; "bad samples (secure)";
          "burst (base)"; "burst (secure)" ]
  in
  let burst_wins = ref 0 and rows = ref 0 in
  List.iter
    (fun (q : E.quality_result) ->
      incr rows;
      if q.E.secure_max_burst >= q.E.base_max_burst then incr burst_wins;
      Table.add_text_row table
        ~label:(Printf.sprintf "%s/%s" q.E.q_benchmark (Dfg.kind_label q.E.q_kind))
        ~cells:
          [
            string_of_int q.E.base_events;
            string_of_int q.E.secure_events;
            Printf.sprintf "%d/%d" q.E.base_corrupted_samples q.E.samples;
            Printf.sprintf "%d/%d" q.E.secure_corrupted_samples q.E.samples;
            string_of_int q.E.base_max_burst;
            string_of_int q.E.secure_max_burst;
          ])
    results;
  Table.render table ^ "\n"
  ^ Printf.sprintf
      "\nSecurity-aware binding injects more error events AND longer consecutive-\n\
       cycle bursts (>= baseline burst on %d/%d series) - the Sec. III argument\n\
       that consecutive injections are likelier to derail the application.\n"
      !burst_wins !rows

let lambda_str l = if l = infinity then "inf" else Printf.sprintf "%.0f" l

let post_binding results =
  let table =
    Table.create ~title:"error level set by co-design (2 locked FUs x 2 minterms)"
      ~columns:
        [ "target errors"; "co-design |M|"; "co-design lambda"; "post-binding |M|";
          "post-binding lambda" ]
  in
  let collapses = ref 0 and rows = ref 0 in
  List.iter
    (fun (r : E.post_binding_result) ->
      incr rows;
      if r.E.post_lambda < r.E.codesign_lambda then incr collapses;
      Table.add_text_row table
        ~label:(Printf.sprintf "%s/%s" r.E.pb_benchmark (Dfg.kind_label r.E.pb_kind))
        ~cells:
          [
            string_of_int r.E.codesign_errors;
            string_of_int r.E.codesign_minterms;
            lambda_str r.E.codesign_lambda;
            (match r.E.post_minterms with
             | Some h -> string_of_int h
             | None -> Printf.sprintf "unreachable (%d)" r.E.post_errors);
            lambda_str r.E.post_lambda;
          ])
    results;
  Table.render table ^ "\n"
  ^ Printf.sprintf
      "\nEven granting post-binding locking an *optimizing* minterm chooser (the\n\
       strongest baseline; the paper's Fig. 4 protocol compares identical minterm\n\
       sets instead), it pays for the same corruption with up to 2x the locked\n\
       minterms, ending with less Eqn. 1 resilience on %d/%d series. Against the\n\
       paper's a-priori-minterms baseline the gap is the 10-150x of Fig. 4: most\n\
       of co-design's advantage is choosing minterms the architecture can\n\
       concentrate; binding freedom then multiplies whatever was chosen.\n"
      !collapses !rows

let ablation ~strategies ~generalization ~budget_title ~budget ~sensitivity_title
    ~sensitivity =
  let buf = Buffer.create 4096 in
  let table =
    Table.create
      ~title:"candidate strategy vs co-design errors (2 locked FUs x 2 minterms)"
      ~columns:[ "benchmark/kind"; "errors"; "candidate trace mass" ]
  in
  List.iter
    (fun (name, kind, rows) ->
      List.iter
        (fun (row : A.strategy_row) ->
          Table.add_text_row table
            ~label:(A.strategy_name row.A.strategy)
            ~cells:
              [
                Printf.sprintf "%s/%s" name (Dfg.kind_label kind);
                string_of_int row.A.codesign_errors;
                string_of_int row.A.candidate_mass;
              ])
        rows)
    strategies;
  Buffer.add_string buf (Table.render table);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    "As Sec. V-B.1 argues: co-design maximizes errors for whatever C the\n\
     designer supplies; rarer candidates (leak-resistant) simply buy fewer\n\
     error events.\n\n";
  let table =
    Table.create ~title:"workload generalization (co-design on first half of the trace)"
      ~columns:[ "Eqn.2 (train)"; "measured (train)"; "measured (unseen half)" ]
  in
  List.iter
    (fun (name, kind, (row : A.generalization_row)) ->
      Table.add_text_row table
        ~label:(Printf.sprintf "%s/%s" name (Dfg.kind_label kind))
        ~cells:
          [
            string_of_int row.A.train_expected;
            string_of_int row.A.train_measured;
            string_of_int row.A.test_measured;
          ])
    generalization;
  Buffer.add_string buf (Table.render table);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    "The locked minterms keep firing on unseen samples of the same workload:\n\
     the 'typical trace' assumption (Sec. IV-A) carries the design's error\n\
     rate to deployment.\n\n";
  let table =
    Table.create ~title:budget_title
      ~columns:[ "Eqn.2 on prefix"; "measured on full trace" ]
  in
  List.iter
    (fun (row : A.budget_row) ->
      Table.add_text_row table
        ~label:(Printf.sprintf "%d samples" row.A.prefix_len)
        ~cells:[ string_of_int row.A.expected; string_of_int row.A.measured ])
    budget;
  Buffer.add_string buf (Table.render table);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    "Short profiles already find the workload's head minterms; the measured\n\
     full-trace corruption stabilizes within a few dozen samples.\n\n";
  let table =
    Table.create ~title:sensitivity_title ~columns:[ "cycles"; "obf vs area" ]
  in
  List.iter
    (fun (row : A.sensitivity_row) ->
      Table.add_text_row table ~label:row.A.label
        ~cells:[ string_of_int row.A.n_cycles; fmt_ratio row.A.obf_vs_area ])
    sensitivity;
  Buffer.add_string buf (Table.render table);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    "One FU per kind leaves binding no freedom (ratio exactly 1x); any larger\n\
     allocation opens the gap, and the effect survives a change of scheduling\n\
     front end. (This probe uses the conservative ratio-of-total-errors over\n\
     head-candidate pairs; the per-combination means of Fig. 4 are larger.)\n";
  Buffer.contents buf
