(** Binding-time logic-locking design methodology — paper Sec. V-C.

    A designer states a target application error rate and a minimum
    acceptable SAT-attack runtime. Co-design then tunes the number of
    locked inputs per FU {e upward from one} until the error target is
    met — the smallest corrupting set, hence the maximum SAT resilience
    (Eqn. 1). If even that minimal set is not resilient enough, the
    plan flags that an exponential-SAT-iteration-runtime scheme
    (Full-Lock-style, {!Rb_netlist.Lock.permutation_network}) must be
    composed on top, paying its area/power premium only for the gap
    critical-minterm locking cannot close. *)

type goal = {
  target_error_events : int;
      (** minimum Eqn. 2 error events over the typical trace *)
  min_lambda : float;  (** minimum acceptable expected SAT iterations *)
}

type plan = {
  solution : Codesign.solution;  (** co-designed binding + locking *)
  minterms_per_fu : int;  (** chosen locked-input budget *)
  achieved_errors : int;
  predicted_lambda : float;  (** Eqn. 1 for the chosen budget *)
  meets_error_target : bool;
  meets_resilience : bool;
  exponential_topup : bool;
      (** true when an exponential-runtime scheme must supplement the
          critical-minterm lock to reach [min_lambda] *)
  stopped : Rb_util.Limits.reason option;
      (** [Some reason] when the [?limits] passed to {!design} tripped
          before the search finished: the plan reflects the largest
          budget actually evaluated, not the converged answer *)
}

val design :
  ?max_minterms_per_fu:int ->
  ?key_bits:int ->
  ?limits:Rb_util.Limits.t ->
  Rb_sim.Kmatrix.t ->
  Rb_sched.Schedule.t ->
  Rb_hls.Allocation.t ->
  scheme:Rb_locking.Scheme.t ->
  locked_fus:int list ->
  candidates:Rb_dfg.Minterm.t array ->
  goal ->
  plan
(** Increase the per-FU budget from 1 to [max_minterms_per_fu]
    (default: the candidate count), running the P-time co-design
    heuristic at each step, and stop at the first budget meeting the
    error target; if none does, the largest budget is kept and
    [meets_error_target] is false.

    [key_bits], when given, fixes the per-FU key length (a designer's
    area budget) instead of letting it grow with the locked-input count
    as the scheme's construction would; a fixed key is what makes the
    resilience gap — and hence the exponential top-up — reachable.

    [limits] (default {!Rb_util.Limits.none}) is polled between
    co-design runs: on cancellation or a passed deadline the growth
    stops early and the returned plan carries [stopped = Some reason].
    Conflict/propagation budgets do not apply here — the loop runs no
    SAT solver. *)
